package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Exec parses and executes a single SQL statement, returning the number of
// affected (or, for SELECT, returned) rows. '?' placeholders bind the given
// arguments positionally.
func (db *DB) Exec(sqlText string, args ...Value) (int, error) {
	st, err := parseSQL(sqlText, args)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.execStmt(st)
}

// ExecScript executes a sequence of semicolon-separated statements and
// returns the total number of affected rows. Placeholders are consumed in
// order across the whole script.
func (db *DB) ExecScript(sqlText string, args ...Value) (int, error) {
	stmts, err := parseScript(sqlText, args)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0
	for _, st := range stmts {
		n, err := db.execStmt(st)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Query executes a SELECT statement and returns the materialized rows.
func (db *DB) Query(sqlText string, args ...Value) (*Rows, error) {
	st, err := parseSQL(sqlText, args)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.execSelect(sel)
}

// parseScript parses zero or more semicolon-separated statements.
func parseScript(src string, args []Value) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: args}
	var stmts []stmt
	for {
		for p.accept(tokOp, ";") {
		}
		if p.at(tokEOF, "") {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.at(tokOp, ";") && !p.at(tokEOF, "") {
			return nil, p.errorf("unexpected %q after statement", p.cur().text)
		}
	}
	if p.nparam != len(args) {
		return nil, fmt.Errorf("sqldb: script has %d placeholders but %d arguments given", p.nparam, len(args))
	}
	return stmts, nil
}

func (db *DB) execStmt(st stmt) (int, error) {
	switch s := st.(type) {
	case *createTableStmt:
		return 0, db.createTableLocked(strings.ToLower(s.Name), s.Cols, s.IfNotExists)
	case *createIndexStmt:
		return 0, db.createIndexLocked(s.Table, s.Column)
	case *dropTableStmt:
		name := strings.ToLower(s.Name)
		if _, ok := db.tables[name]; !ok && !s.IfExists {
			return 0, fmt.Errorf("sqldb: unknown table %q", s.Name)
		}
		delete(db.tables, name)
		return 0, nil
	case *deleteStmt:
		return db.execDelete(s)
	case *insertStmt:
		return db.execInsert(s)
	case *selectStmt:
		rows, err := db.execSelect(s)
		if err != nil {
			return 0, err
		}
		return len(rows.Data), nil
	default:
		return 0, fmt.Errorf("sqldb: unsupported statement %T", st)
	}
}

func (db *DB) createIndexLocked(table, column string) error {
	t := db.tables[strings.ToLower(table)]
	if t == nil {
		return fmt.Errorf("sqldb: unknown table %q", table)
	}
	col := strings.ToLower(column)
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("sqldb: table %q has no column %q", table, column)
	}
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	ix := newHashIndex(ci)
	ix.rebuild(t.rows)
	t.indexes[col] = ix
	return nil
}

func (db *DB) execDelete(s *deleteStmt) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("sqldb: unknown table %q", s.Table)
	}
	if s.Where == nil {
		n := len(t.rows)
		t.rows = t.rows[:0]
		for _, ix := range t.indexes {
			ix.rebuild(t.rows)
		}
		return n, nil
	}
	schema := baseSchema(t, strings.ToLower(s.Table))
	c := &compiler{db: db, schema: schema}
	cond, err := c.compile(s.Where)
	if err != nil {
		return 0, err
	}
	kept := t.rows[:0:0]
	removed := 0
	ctx := &evalCtx{}
	for _, row := range t.rows {
		ctx.row = row
		v, err := cond(ctx)
		if err != nil {
			return 0, err
		}
		if v.Truthy() {
			removed++
		} else {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	for _, ix := range t.indexes {
		ix.rebuild(t.rows)
	}
	return removed, nil
}

func (db *DB) execInsert(s *insertStmt) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("sqldb: unknown table %q", s.Table)
	}
	dest := make([]int, 0, len(t.cols))
	if len(s.Columns) == 0 {
		for i := range t.cols {
			dest = append(dest, i)
		}
	} else {
		for _, name := range s.Columns {
			ci, ok := t.colIdx[name]
			if !ok {
				return 0, fmt.Errorf("sqldb: table %q has no column %q", s.Table, name)
			}
			dest = append(dest, ci)
		}
	}

	var source [][]Value
	if s.Select != nil {
		rows, err := db.execSelect(s.Select)
		if err != nil {
			return 0, err
		}
		if len(rows.Cols) != len(dest) {
			return 0, fmt.Errorf("sqldb: INSERT expects %d columns, SELECT returns %d", len(dest), len(rows.Cols))
		}
		source = rows.Data
	} else {
		c := &compiler{db: db, schema: &relSchema{}}
		ctx := &evalCtx{}
		for _, rowExprs := range s.Rows {
			if len(rowExprs) != len(dest) {
				return 0, fmt.Errorf("sqldb: INSERT expects %d values, got %d", len(dest), len(rowExprs))
			}
			row := make([]Value, len(rowExprs))
			for i, e := range rowExprs {
				fn, err := c.compile(e)
				if err != nil {
					return 0, err
				}
				v, err := fn(ctx)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			source = append(source, row)
		}
	}

	for _, src := range source {
		row := make([]Value, len(t.cols))
		for i, ci := range dest {
			row[ci] = coerce(src[i], t.cols[ci].Type)
		}
		t.appendRow(row)
	}
	return len(source), nil
}

// ---- SELECT execution ----

// relation is a materialized intermediate result.
type relation struct {
	schema *relSchema
	rows   [][]Value
	// table is non-nil when rows alias a base table heap and the schema maps
	// 1:1 to the table's columns; this enables index nested-loop joins.
	table *Table
}

func baseSchema(t *Table, alias string) *relSchema {
	cols := make([]relCol, len(t.cols))
	for i, c := range t.cols {
		cols[i] = relCol{qual: alias, name: c.Name}
	}
	return &relSchema{cols: cols}
}

func (db *DB) execSelect(sel *selectStmt) (*Rows, error) {
	out, err := db.execSelectCore(sel)
	if err != nil {
		return nil, err
	}
	for u := sel.Union; u != nil; u = u.Union {
		next, err := db.execSelectCore(u)
		if err != nil {
			return nil, err
		}
		if len(next.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("sqldb: UNION ALL arms have %d and %d columns", len(out.Cols), len(next.Cols))
		}
		out.Data = append(out.Data, next.Data...)
	}
	return out, nil
}

// conjunct is one AND-term of the WHERE/ON pool with planning metadata.
type conjunct struct {
	e       expr
	needs   map[string]bool // aliases referenced; nil means undetermined
	applied bool
}

func (db *DB) execSelectCore(sel *selectStmt) (*Rows, error) {
	// 1. Materialize FROM items.
	rels := make([]relation, 0, len(sel.From))
	aliases := make([]string, 0, len(sel.From))
	var pool []*conjunct
	for _, ref := range sel.From {
		alias := ref.Alias
		if alias == "" {
			alias = strings.ToLower(ref.Name)
		}
		var rel relation
		if ref.Sub != nil {
			sub, err := db.execSelect(ref.Sub)
			if err != nil {
				return nil, err
			}
			cols := make([]relCol, len(sub.Cols))
			for i, c := range sub.Cols {
				cols[i] = relCol{qual: alias, name: c}
			}
			rel = relation{schema: &relSchema{cols: cols}, rows: sub.Data}
		} else {
			t := db.tables[strings.ToLower(ref.Name)]
			if t == nil {
				return nil, fmt.Errorf("sqldb: unknown table %q", ref.Name)
			}
			rel = relation{schema: baseSchema(t, alias), rows: t.rows, table: t}
		}
		rels = append(rels, rel)
		aliases = append(aliases, alias)
		if ref.On != nil {
			for _, e := range splitAnd(ref.On) {
				pool = append(pool, &conjunct{e: e})
			}
		}
	}
	if sel.Where != nil {
		for _, e := range splitAnd(sel.Where) {
			pool = append(pool, &conjunct{e: e})
		}
	}

	// Column name → owning aliases, for resolving unqualified references in
	// planning.
	colOwners := map[string][]string{}
	for i, rel := range rels {
		seen := map[string]bool{}
		for _, c := range rel.schema.cols {
			if !seen[c.name] {
				colOwners[c.name] = append(colOwners[c.name], aliases[i])
				seen[c.name] = true
			}
		}
	}
	for _, cj := range pool {
		cj.needs = referencedAliases(cj.e, colOwners)
	}

	// 2. Push single-relation filters down before joining.
	for i := range rels {
		var filters []*conjunct
		for _, cj := range pool {
			if cj.applied || cj.needs == nil || len(cj.needs) != 1 || !cj.needs[aliases[i]] {
				continue
			}
			filters = append(filters, cj)
		}
		if len(filters) == 0 {
			continue
		}
		filtered, err := db.filterRelation(rels[i], filters)
		if err != nil {
			return nil, err
		}
		rels[i] = filtered
		for _, cj := range filters {
			cj.applied = true
		}
	}

	// 3. Join. Greedy order: start from the smallest relation, then prefer
	// index nested-loop joins into indexed base tables, then hash joins,
	// then the smallest remaining cross product.
	var acc relation
	joined := map[string]bool{}
	if len(rels) == 0 {
		acc = relation{schema: &relSchema{}, rows: [][]Value{{}}}
	} else {
		start := 0
		for i := range rels {
			if len(rels[i].rows) < len(rels[start].rows) {
				start = i
			}
		}
		acc = rels[start]
		joined[aliases[start]] = true
		remaining := make([]int, 0, len(rels)-1)
		for i := range rels {
			if i != start {
				remaining = append(remaining, i)
			}
		}
		for len(remaining) > 0 {
			nextPos, err := db.chooseNext(acc, rels, aliases, joined, remaining, pool)
			if err != nil {
				return nil, err
			}
			idx := remaining[nextPos]
			remaining = append(remaining[:nextPos], remaining[nextPos+1:]...)
			combined, err := db.joinRelations(acc, rels[idx], aliases[idx], pool)
			if err != nil {
				return nil, err
			}
			acc = combined
			joined[aliases[idx]] = true
			// Apply every now-evaluable conjunct.
			var filters []*conjunct
			for _, cj := range pool {
				if cj.applied || cj.needs == nil || !subset(cj.needs, joined) {
					continue
				}
				filters = append(filters, cj)
			}
			if len(filters) > 0 {
				acc, err = db.filterRelation(acc, filters)
				if err != nil {
					return nil, err
				}
				for _, cj := range filters {
					cj.applied = true
				}
			}
		}
	}

	// 4. Any leftover conjuncts (e.g. with undetermined references) apply to
	// the full joined relation.
	var leftovers []*conjunct
	for _, cj := range pool {
		if !cj.applied {
			leftovers = append(leftovers, cj)
		}
	}
	if len(leftovers) > 0 {
		var err error
		acc, err = db.filterRelation(acc, leftovers)
		if err != nil {
			return nil, err
		}
	}

	// 5. Projection, aggregation, ordering.
	return db.project(sel, acc)
}

// filterRelation returns rel restricted to rows satisfying every conjunct.
func (db *DB) filterRelation(rel relation, conjs []*conjunct) (relation, error) {
	c := &compiler{db: db, schema: rel.schema}
	fns := make([]evalFn, len(conjs))
	for i, cj := range conjs {
		fn, err := c.compile(cj.e)
		if err != nil {
			return relation{}, err
		}
		fns[i] = fn
	}
	out := make([][]Value, 0, len(rel.rows))
	ctx := &evalCtx{}
rows:
	for _, row := range rel.rows {
		ctx.row = row
		for _, fn := range fns {
			v, err := fn(ctx)
			if err != nil {
				return relation{}, err
			}
			if !v.Truthy() {
				continue rows
			}
		}
		out = append(out, row)
	}
	return relation{schema: rel.schema, rows: out}, nil
}

// equiPair is an equality join condition split across the two join inputs.
// accFn and relFn compute the key on the accumulated and candidate side;
// relCol is the candidate-side column position when the candidate key is a
// bare column reference (enabling index nested-loop joins), −1 otherwise.
type equiPair struct {
	accFn, relFn evalFn
	relCol       int
	cj           *conjunct
}

// equiPairsFor finds conjuncts of the form exprA = exprB where one side is
// computable from acc alone and the other from cand alone. This covers both
// plain column equality (R1.token = R2.token) and computed keys such as the
// paper's word tokenizer join N2.i = LOCATE(' ', string, N1.i + 1).
func equiPairsFor(db *DB, acc relation, cand relation, pool []*conjunct) []equiPair {
	accC := &compiler{db: db, schema: acc.schema}
	candC := &compiler{db: db, schema: cand.schema}
	tryCompile := func(c *compiler, e expr) (evalFn, bool) {
		if isAggregate(e) {
			return nil, false
		}
		fn, err := c.compile(e)
		return fn, err == nil
	}
	candCol := func(e expr) int {
		cr, ok := e.(*colRef)
		if !ok {
			return -1
		}
		idx, err := cand.schema.resolve(cr.Table, cr.Name)
		if err != nil {
			return -1
		}
		return idx
	}
	var pairs []equiPair
	for _, cj := range pool {
		if cj.applied {
			continue
		}
		be, ok := cj.e.(*binaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		if lfn, ok := tryCompile(accC, be.L); ok {
			if rfn, ok := tryCompile(candC, be.R); ok {
				pairs = append(pairs, equiPair{accFn: lfn, relFn: rfn, relCol: candCol(be.R), cj: cj})
				continue
			}
		}
		if lfn, ok := tryCompile(candC, be.L); ok {
			if rfn, ok := tryCompile(accC, be.R); ok {
				pairs = append(pairs, equiPair{accFn: rfn, relFn: lfn, relCol: candCol(be.L), cj: cj})
			}
		}
	}
	return pairs
}

// chooseNext picks the next relation to join (position within remaining).
// Preference order: equi-join into an indexed base table, any equi-join,
// a join that at least makes some pending filter applicable, and finally
// the smallest remaining relation (cross product).
func (db *DB) chooseNext(acc relation, rels []relation, aliases []string, joined map[string]bool, remaining []int, pool []*conjunct) (int, error) {
	bestPos, bestScore, bestRows := -1, -1, 0
	for pos, idx := range remaining {
		cand := rels[idx]
		pairs := equiPairsFor(db, acc, cand, pool)
		score := 0
		switch {
		case len(pairs) > 0:
			score = 2
			if cand.table != nil {
				for _, p := range pairs {
					if p.relCol < 0 {
						continue
					}
					colName := cand.schema.cols[p.relCol].name
					if _, ok := cand.table.indexes[colName]; ok {
						score = 3
						break
					}
				}
			}
		default:
			// Does adding cand make any pending conjunct evaluable? If so
			// the cross product will be filtered immediately afterwards.
			for _, cj := range pool {
				if cj.applied || cj.needs == nil || !cj.needs[aliases[idx]] {
					continue
				}
				applicable := true
				for a := range cj.needs {
					if a != aliases[idx] && !joined[a] {
						applicable = false
						break
					}
				}
				if applicable {
					score = 1
					break
				}
			}
		}
		if score > bestScore || (score == bestScore && len(cand.rows) < bestRows) {
			bestPos, bestScore, bestRows = pos, score, len(cand.rows)
		}
	}
	if bestPos < 0 {
		return 0, fmt.Errorf("sqldb: internal error: no joinable relation")
	}
	return bestPos, nil
}

// joinRelations joins acc with cand using the best available strategy.
func (db *DB) joinRelations(acc, cand relation, alias string, pool []*conjunct) (relation, error) {
	pairs := equiPairsFor(db, acc, cand, pool)
	outSchema := &relSchema{cols: append(append([]relCol{}, acc.schema.cols...), cand.schema.cols...)}

	if len(pairs) == 0 {
		// Cross product; pool filters are applied by the caller.
		out := make([][]Value, 0, len(acc.rows)*len(cand.rows))
		for _, a := range acc.rows {
			for _, b := range cand.rows {
				out = append(out, concatRows(a, b))
			}
		}
		return relation{schema: outSchema, rows: out}, nil
	}

	evalKey := func(fn evalFn, ctx *evalCtx) (Value, error) { return fn(ctx) }

	// Index nested-loop join when the candidate is an indexed base table and
	// the candidate-side key is a bare indexed column.
	if cand.table != nil {
		for pi, p := range pairs {
			if p.relCol < 0 {
				continue
			}
			colName := cand.schema.cols[p.relCol].name
			ix, ok := cand.table.indexes[colName]
			if !ok {
				continue
			}
			rest := make([]equiPair, 0, len(pairs)-1)
			for qi, q := range pairs {
				if qi != pi {
					rest = append(rest, q)
				}
			}
			out := make([][]Value, 0, len(acc.rows))
			actx, bctx := &evalCtx{}, &evalCtx{}
			for _, a := range acc.rows {
				actx.row = a
				kv, err := evalKey(p.accFn, actx)
				if err != nil {
					return relation{}, err
				}
				if kv.IsNull() {
					continue
				}
			matches:
				for _, rp := range ix.buckets[kv.hashKey()] {
					b := cand.rows[rp]
					bctx.row = b
					for _, q := range rest {
						av, err := evalKey(q.accFn, actx)
						if err != nil {
							return relation{}, err
						}
						bv, err := evalKey(q.relFn, bctx)
						if err != nil {
							return relation{}, err
						}
						cmp, ok := Compare(av, bv)
						if !ok || cmp != 0 {
							continue matches
						}
					}
					out = append(out, concatRows(a, b))
				}
			}
			for _, p := range pairs {
				p.cj.applied = true
			}
			return relation{schema: outSchema, rows: out}, nil
		}
	}

	// Hash join: build on the smaller input.
	var keybuf []byte
	makeKey := func(row []Value, fns []evalFn, ctx *evalCtx) (string, bool, error) {
		ctx.row = row
		keybuf = keybuf[:0]
		for _, fn := range fns {
			v, err := fn(ctx)
			if err != nil {
				return "", false, err
			}
			if v.IsNull() {
				return "", false, nil
			}
			keybuf = appendKey(keybuf, v)
		}
		return string(keybuf), true, nil
	}
	accFns := make([]evalFn, len(pairs))
	candFns := make([]evalFn, len(pairs))
	for i, p := range pairs {
		accFns[i] = p.accFn
		candFns[i] = p.relFn
	}
	capacity := len(acc.rows)
	if len(cand.rows) > capacity {
		capacity = len(cand.rows)
	}
	out := make([][]Value, 0, capacity)
	ctx := &evalCtx{}
	if len(cand.rows) <= len(acc.rows) {
		ht := make(map[string][]int, len(cand.rows))
		for i, b := range cand.rows {
			k, ok, err := makeKey(b, candFns, ctx)
			if err != nil {
				return relation{}, err
			}
			if ok {
				ht[k] = append(ht[k], i)
			}
		}
		for _, a := range acc.rows {
			k, ok, err := makeKey(a, accFns, ctx)
			if err != nil {
				return relation{}, err
			}
			if !ok {
				continue
			}
			for _, bi := range ht[k] {
				out = append(out, concatRows(a, cand.rows[bi]))
			}
		}
	} else {
		ht := make(map[string][]int, len(acc.rows))
		for i, a := range acc.rows {
			k, ok, err := makeKey(a, accFns, ctx)
			if err != nil {
				return relation{}, err
			}
			if ok {
				ht[k] = append(ht[k], i)
			}
		}
		for _, b := range cand.rows {
			k, ok, err := makeKey(b, candFns, ctx)
			if err != nil {
				return relation{}, err
			}
			if !ok {
				continue
			}
			for _, ai := range ht[k] {
				out = append(out, concatRows(acc.rows[ai], b))
			}
		}
	}
	for _, p := range pairs {
		p.cj.applied = true
	}
	return relation{schema: outSchema, rows: out}, nil
}

func concatRows(a, b []Value) []Value {
	out := make([]Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// splitAnd flattens an AND tree into conjuncts.
func splitAnd(e expr) []expr {
	if be, ok := e.(*binaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []expr{e}
}

// referencedAliases returns the set of FROM aliases an expression touches,
// or nil when a reference cannot be attributed statically.
func referencedAliases(e expr, colOwners map[string][]string) map[string]bool {
	needs := map[string]bool{}
	ok := collectAliases(e, colOwners, needs)
	if !ok {
		return nil
	}
	return needs
}

func collectAliases(e expr, colOwners map[string][]string, needs map[string]bool) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *literal:
		return true
	case *colRef:
		if x.Table != "" {
			needs[x.Table] = true
			return true
		}
		owners := colOwners[x.Name]
		if len(owners) != 1 {
			return false
		}
		needs[owners[0]] = true
		return true
	case *unaryExpr:
		return collectAliases(x.X, colOwners, needs)
	case *binaryExpr:
		return collectAliases(x.L, colOwners, needs) && collectAliases(x.R, colOwners, needs)
	case *funcCall:
		for _, a := range x.Args {
			if !collectAliases(a, colOwners, needs) {
				return false
			}
		}
		return true
	case *inExpr:
		if !collectAliases(x.X, colOwners, needs) {
			return false
		}
		for _, a := range x.List {
			if !collectAliases(a, colOwners, needs) {
				return false
			}
		}
		return true // subquery is uncorrelated by construction
	case *isNullExpr:
		return collectAliases(x.X, colOwners, needs)
	case *caseExpr:
		for _, w := range x.Whens {
			if !collectAliases(w.Cond, colOwners, needs) || !collectAliases(w.Then, colOwners, needs) {
				return false
			}
		}
		if x.Else != nil {
			return collectAliases(x.Else, colOwners, needs)
		}
		return true
	default:
		return false
	}
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ---- projection, grouping, ordering ----

func (db *DB) project(sel *selectStmt, acc relation) (*Rows, error) {
	// Expand stars into concrete column expressions.
	type projItem struct {
		e     expr
		alias string
		name  string
	}
	var items []projItem
	for _, it := range sel.Items {
		if it.Star {
			found := false
			for _, c := range acc.schema.cols {
				if it.StarTable != "" && c.qual != it.StarTable {
					continue
				}
				items = append(items, projItem{e: &colRef{Table: c.qual, Name: c.name}, name: c.name})
				found = true
			}
			if !found && it.StarTable != "" {
				return nil, fmt.Errorf("sqldb: unknown table %q in select list", it.StarTable)
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*colRef); ok {
				name = cr.Name
			}
		}
		items = append(items, projItem{e: it.Expr, alias: it.Alias, name: name})
	}

	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, it := range items {
			if it.e != nil && isAggregate(it.e) {
				grouped = true
				break
			}
		}
		if sel.Having != nil && isAggregate(sel.Having) {
			grouped = true
		}
	}

	// Alias substitution for HAVING and ORDER BY: names that do not resolve
	// in the source schema but match a select alias are replaced by the
	// aliased expression (MySQL-compatible for the paper's HAVING score...).
	aliasExpr := map[string]expr{}
	for _, it := range items {
		if it.alias != "" {
			aliasExpr[it.alias] = it.e
		}
	}
	substitute := func(e expr) expr { return substituteAliases(e, aliasExpr, acc.schema) }

	c := &compiler{db: db, schema: acc.schema, allowAggs: grouped}
	itemFns := make([]evalFn, len(items))
	names := make([]string, len(items))
	for i, it := range items {
		fn, err := c.compile(it.e)
		if err != nil {
			return nil, err
		}
		itemFns[i] = fn
		if it.name != "" {
			names[i] = it.name
		} else {
			names[i] = fmt.Sprintf("col%d", i)
		}
	}

	var havingFn evalFn
	if sel.Having != nil {
		fn, err := c.compile(substitute(sel.Having))
		if err != nil {
			return nil, err
		}
		havingFn = fn
	}

	// ORDER BY: positional references pick output columns; everything else
	// evaluates in the same context as the select items.
	type orderKey struct {
		fn   evalFn // nil when positional
		pos  int
		desc bool
	}
	orderKeys := make([]orderKey, 0, len(sel.OrderBy))
	for _, oi := range sel.OrderBy {
		if lit, ok := oi.Expr.(*literal); ok && lit.Val.Kind == KindInt {
			p := int(lit.Val.I) - 1
			if p < 0 || p >= len(items) {
				return nil, fmt.Errorf("sqldb: ORDER BY position %d out of range", lit.Val.I)
			}
			orderKeys = append(orderKeys, orderKey{pos: p, desc: oi.Desc, fn: nil})
			continue
		}
		fn, err := c.compile(substitute(oi.Expr))
		if err != nil {
			return nil, err
		}
		orderKeys = append(orderKeys, orderKey{fn: fn, pos: -1, desc: oi.Desc})
	}

	type outRow struct {
		vals []Value
		keys []Value
	}
	var outs []outRow

	emit := func(ctx *evalCtx) error {
		if havingFn != nil {
			hv, err := havingFn(ctx)
			if err != nil {
				return err
			}
			if !hv.Truthy() {
				return nil
			}
		}
		vals := make([]Value, len(itemFns))
		for i, fn := range itemFns {
			v, err := fn(ctx)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		keys := make([]Value, len(orderKeys))
		for i, ok := range orderKeys {
			if ok.fn == nil {
				keys[i] = vals[ok.pos]
				continue
			}
			v, err := ok.fn(ctx)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		outs = append(outs, outRow{vals: vals, keys: keys})
		return nil
	}

	if grouped {
		// Group-key expressions must not contain aggregates. Aliases from
		// the select list may appear (MySQL extension used by the paper's
		// Appendix A.3 GROUP BY ... qgram).
		gc := &compiler{db: db, schema: acc.schema}
		groupFns := make([]evalFn, len(sel.GroupBy))
		for i, ge := range sel.GroupBy {
			fn, err := gc.compile(substitute(ge))
			if err != nil {
				return nil, err
			}
			groupFns[i] = fn
		}
		type group struct {
			rep  []Value
			accs []aggAcc
		}
		groups := map[string]*group{}
		var orderOfGroups []string
		ctx := &evalCtx{}
		var keybuf []byte
		for _, row := range acc.rows {
			ctx.row = row
			keybuf = keybuf[:0]
			for _, fn := range groupFns {
				v, err := fn(ctx)
				if err != nil {
					return nil, err
				}
				keybuf = appendKey(keybuf, v)
			}
			k := string(keybuf)
			g, ok := groups[k]
			if !ok {
				g = &group{rep: row, accs: newAggAccs(c.aggs)}
				groups[k] = g
				orderOfGroups = append(orderOfGroups, k)
			}
			for i := range c.aggs {
				if err := g.accs[i].add(&c.aggs[i], ctx); err != nil {
					return nil, err
				}
			}
		}
		if len(groups) == 0 && len(sel.GroupBy) == 0 {
			// Aggregate over empty input yields a single all-NULL group.
			g := &group{rep: make([]Value, len(acc.schema.cols)), accs: newAggAccs(c.aggs)}
			groups[""] = g
			orderOfGroups = append(orderOfGroups, "")
		}
		for _, k := range orderOfGroups {
			g := groups[k]
			aggVals := make([]Value, len(g.accs))
			for i := range g.accs {
				aggVals[i] = g.accs[i].finalize(&c.aggs[i])
			}
			gctx := &evalCtx{row: g.rep, aggs: aggVals}
			if err := emit(gctx); err != nil {
				return nil, err
			}
		}
	} else {
		ctx := &evalCtx{}
		for _, row := range acc.rows {
			ctx.row = row
			if err := emit(ctx); err != nil {
				return nil, err
			}
		}
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]bool{}
		dedup := outs[:0]
		var keybuf []byte
		for _, o := range outs {
			keybuf = keybuf[:0]
			for _, v := range o.vals {
				keybuf = appendKey(keybuf, v)
			}
			k := string(keybuf)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, o)
			}
		}
		outs = dedup
	}

	// ORDER BY.
	if len(orderKeys) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, ok := range orderKeys {
				a, b := outs[i].keys[k], outs[j].keys[k]
				cmp := compareForSort(a, b)
				if cmp == 0 {
					continue
				}
				if ok.desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}

	// LIMIT.
	if sel.Limit != nil {
		lc := &compiler{db: db, schema: &relSchema{}}
		fn, err := lc.compile(sel.Limit)
		if err != nil {
			return nil, err
		}
		v, err := fn(&evalCtx{})
		if err != nil {
			return nil, err
		}
		n := int(v.AsInt())
		if n < 0 {
			n = 0
		}
		if n < len(outs) {
			outs = outs[:n]
		}
	}

	res := &Rows{Cols: names, Data: make([][]Value, len(outs))}
	for i, o := range outs {
		res.Data[i] = o.vals
	}
	return res, nil
}

// compareForSort orders values with NULLs first (MySQL ASC semantics).
func compareForSort(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	cmp, _ := Compare(a, b)
	return cmp
}

// substituteAliases replaces unresolvable plain column references that match
// a select alias with the aliased expression.
func substituteAliases(e expr, aliasExpr map[string]expr, schema *relSchema) expr {
	switch x := e.(type) {
	case *colRef:
		if x.Table == "" {
			if _, err := schema.resolve("", x.Name); err != nil {
				if sub, ok := aliasExpr[x.Name]; ok {
					return sub
				}
			}
		}
		return x
	case *unaryExpr:
		return &unaryExpr{Op: x.Op, X: substituteAliases(x.X, aliasExpr, schema)}
	case *binaryExpr:
		return &binaryExpr{Op: x.Op,
			L: substituteAliases(x.L, aliasExpr, schema),
			R: substituteAliases(x.R, aliasExpr, schema)}
	case *funcCall:
		args := make([]expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteAliases(a, aliasExpr, schema)
		}
		return &funcCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *inExpr:
		out := *x
		out.X = substituteAliases(x.X, aliasExpr, schema)
		list := make([]expr, len(x.List))
		for i, a := range x.List {
			list[i] = substituteAliases(a, aliasExpr, schema)
		}
		out.List = list
		return &out
	case *isNullExpr:
		return &isNullExpr{X: substituteAliases(x.X, aliasExpr, schema), Not: x.Not}
	case *caseExpr:
		out := &caseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, whenClause{
				Cond: substituteAliases(w.Cond, aliasExpr, schema),
				Then: substituteAliases(w.Then, aliasExpr, schema),
			})
		}
		if x.Else != nil {
			out.Else = substituteAliases(x.Else, aliasExpr, schema)
		}
		return out
	default:
		return e
	}
}

// ---- aggregation accumulators ----

// aggAcc accumulates one aggregate over one group.
type aggAcc struct {
	count    int64
	nonNull  int64
	isum     int64
	fsum     float64
	sawFloat bool
	min, max Value
	distinct map[string]bool
}

func newAggAccs(specs []aggSpec) []aggAcc {
	accs := make([]aggAcc, len(specs))
	for i, s := range specs {
		if s.distinct {
			accs[i].distinct = map[string]bool{}
		}
	}
	return accs
}

func (a *aggAcc) add(spec *aggSpec, ctx *evalCtx) error {
	a.count++
	if spec.star {
		return nil
	}
	v, err := spec.arg(ctx)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if a.distinct != nil {
		k := string(appendKey(nil, v))
		if a.distinct[k] {
			return nil
		}
		a.distinct[k] = true
	}
	a.nonNull++
	switch v.Kind {
	case KindInt:
		a.isum += v.I
	case KindFloat:
		a.fsum += v.F
		a.sawFloat = true
	case KindString:
		a.fsum += v.AsFloat()
		a.sawFloat = true
	}
	if a.nonNull == 1 {
		a.min, a.max = v, v
	} else {
		if cmp, ok := Compare(v, a.min); ok && cmp < 0 {
			a.min = v
		}
		if cmp, ok := Compare(v, a.max); ok && cmp > 0 {
			a.max = v
		}
	}
	return nil
}

func (a *aggAcc) finalize(spec *aggSpec) Value {
	switch spec.name {
	case "COUNT":
		if spec.star {
			return Int(a.count)
		}
		return Int(a.nonNull)
	case "SUM":
		if a.nonNull == 0 {
			return Null()
		}
		if a.sawFloat {
			return Float(a.fsum + float64(a.isum))
		}
		return Int(a.isum)
	case "AVG":
		if a.nonNull == 0 {
			return Null()
		}
		return Float((a.fsum + float64(a.isum)) / float64(a.nonNull))
	case "MIN":
		if a.nonNull == 0 {
			return Null()
		}
		return a.min
	case "MAX":
		if a.nonNull == 0 {
			return Null()
		}
		return a.max
	default:
		return Null()
	}
}

// appendKey appends a normalized, collision-free encoding of v to buf; it is
// used for hash-join keys, GROUP BY keys, DISTINCT and COUNT(DISTINCT). The
// normalization mirrors Value.hashKey: numerics exactly representable in
// float64 share an encoding across INT/DOUBLE; larger integers keep their
// exact 64-bit form.
func appendKey(buf []byte, v Value) []byte {
	k := v.hashKey()
	switch k.kind {
	case 'n':
		return append(buf, 0)
	case 'f':
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(k.f))
		buf = append(buf, 1)
		return append(buf, b[:]...)
	case 'i':
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(k.i))
		buf = append(buf, 3)
		return append(buf, b[:]...)
	default:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(k.s)))
		buf = append(buf, 2)
		buf = append(buf, b[:]...)
		return append(buf, k.s...)
	}
}
