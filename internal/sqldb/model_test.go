package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// These tests run randomized relational workloads through the engine and
// through a plain-Go model of the same semantics, as a lightweight fuzzer
// for the join/aggregation pipeline the declarative predicates depend on.

type modelRow struct {
	g int64
	a int64 // -1 encodes NULL in the generator
	b float64
	s string
}

func randomModel(rng *rand.Rand, n int) []modelRow {
	rows := make([]modelRow, n)
	for i := range rows {
		rows[i] = modelRow{
			g: int64(rng.Intn(5)),
			a: int64(rng.Intn(12)) - 1, // -1 → NULL
			b: math.Round(rng.Float64()*100) / 4,
			s: string(rune('a' + rng.Intn(6))),
		}
	}
	return rows
}

func loadModel(t *testing.T, db *DB, rows []modelRow) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t (g INT, a INT, b DOUBLE, s VARCHAR(4))")
	for _, r := range rows {
		av := Int(r.a)
		if r.a < 0 {
			av = Null()
		}
		mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?, ?)",
			Int(r.g), av, Float(r.b), String(r.s))
	}
}

func TestRandomizedGroupByAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows := randomModel(rng, 1+rng.Intn(60))
		db := New()
		loadModel(t, db, rows)
		threshold := int64(rng.Intn(10))

		got := mustQuery(t, db, `
			SELECT g, COUNT(*) AS n, COUNT(a) AS na, SUM(a) AS sa,
			       AVG(b) AS ab, MIN(a) AS mina, MAX(s) AS maxs
			FROM t WHERE g >= ? GROUP BY g ORDER BY g`, Int(threshold))

		// Go model.
		type agg struct {
			n, na, sa int64
			sb        float64
			mina      int64
			maxs      string
			hasA      bool
		}
		model := map[int64]*agg{}
		for _, r := range rows {
			if r.g < threshold {
				continue
			}
			m, ok := model[r.g]
			if !ok {
				m = &agg{mina: 1 << 40}
				model[r.g] = m
			}
			m.n++
			m.sb += r.b
			if r.a >= 0 {
				m.na++
				m.sa += r.a
				m.hasA = true
				if r.a < m.mina {
					m.mina = r.a
				}
			}
			if r.s > m.maxs {
				m.maxs = r.s
			}
		}
		var keys []int64
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		if len(got.Data) != len(keys) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got.Data), len(keys))
		}
		for i, k := range keys {
			m := model[k]
			row := got.Data[i]
			if row[0].AsInt() != k || row[1].AsInt() != m.n || row[2].AsInt() != m.na {
				t.Fatalf("trial %d group %d: counts %v, want n=%d na=%d", trial, k, row, m.n, m.na)
			}
			if m.hasA {
				if row[3].AsInt() != m.sa || row[5].AsInt() != m.mina {
					t.Fatalf("trial %d group %d: sum/min %v, want %d/%d", trial, k, row, m.sa, m.mina)
				}
			} else if !row[3].IsNull() || !row[5].IsNull() {
				t.Fatalf("trial %d group %d: SUM/MIN over all-NULL should be NULL: %v", trial, k, row)
			}
			if math.Abs(row[4].AsFloat()-m.sb/float64(m.n)) > 1e-9 {
				t.Fatalf("trial %d group %d: avg %v, want %v", trial, k, row[4], m.sb/float64(m.n))
			}
			if row[6].AsString() != m.maxs {
				t.Fatalf("trial %d group %d: max %v, want %s", trial, k, row[6], m.maxs)
			}
		}
	}
}

func TestRandomizedJoinAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		rows := randomModel(rng, 1+rng.Intn(40))
		db := New()
		loadModel(t, db, rows)
		mustExec(t, db, "CREATE TABLE u (k INT, v INT)")
		nu := 1 + rng.Intn(30)
		type urow struct{ k, v int64 }
		var us []urow
		for i := 0; i < nu; i++ {
			u := urow{k: int64(rng.Intn(12)) - 1, v: int64(rng.Intn(20))}
			us = append(us, u)
			mustExec(t, db, "INSERT INTO u VALUES (?, ?)", Int(u.k), Int(u.v))
		}
		if trial%2 == 0 {
			mustExec(t, db, "CREATE INDEX u_k ON u (k)")
		}
		vmin := int64(rng.Intn(15))

		got := mustQuery(t, db, `
			SELECT t.g, COUNT(*) AS n FROM t, u
			WHERE t.a = u.k AND u.v >= ? GROUP BY t.g ORDER BY t.g`, Int(vmin))

		model := map[int64]int64{}
		for _, r := range rows {
			if r.a < 0 {
				continue
			}
			for _, u := range us {
				if u.k == r.a && u.v >= vmin {
					model[r.g]++
				}
			}
		}
		var keys []int64
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(got.Data) != len(keys) {
			t.Fatalf("trial %d: %d groups, want %d (model %v, rows %v)", trial, len(got.Data), len(keys), model, got.Data)
		}
		for i, k := range keys {
			if got.Data[i][0].AsInt() != k || got.Data[i][1].AsInt() != model[k] {
				t.Fatalf("trial %d: group %d count %v, want %d", trial, k, got.Data[i], model[k])
			}
		}
	}
}

func TestRandomizedDistinctOrderLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		rows := randomModel(rng, 1+rng.Intn(50))
		db := New()
		loadModel(t, db, rows)
		limit := 1 + rng.Intn(6)
		got := mustQuery(t, db, fmt.Sprintf(
			"SELECT DISTINCT g FROM t ORDER BY g DESC LIMIT %d", limit))

		set := map[int64]bool{}
		for _, r := range rows {
			set[r.g] = true
		}
		var want []int64
		for k := range set {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
		if len(want) > limit {
			want = want[:limit]
		}
		if len(got.Data) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got.Data), len(want))
		}
		for i, k := range want {
			if got.Data[i][0].AsInt() != k {
				t.Fatalf("trial %d: row %d = %v, want %d", trial, i, got.Data[i], k)
			}
		}
	}
}

func TestRandomizedUnionAllAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		rows := randomModel(rng, 1+rng.Intn(30))
		db := New()
		loadModel(t, db, rows)
		got := mustQuery(t, db, `
			SELECT g FROM t WHERE g < 2
			UNION ALL
			SELECT g FROM t WHERE g >= 2`)
		if len(got.Data) != len(rows) {
			t.Fatalf("trial %d: UNION ALL partition returned %d rows, want %d", trial, len(got.Data), len(rows))
		}
	}
}
