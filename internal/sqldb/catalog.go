package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ScalarFunc is a user-defined scalar function. Implementations must be pure
// (the planner may re-order or repeat calls) and safe for concurrent use.
// The paper's framework relies on UDFs for edit similarity and Jaro–Winkler
// (§4.4, Appendix B.4.3); predicates register them the same way here.
type ScalarFunc func(args []Value) (Value, error)

// Table is an in-memory heap of rows plus any secondary hash indexes.
type Table struct {
	name    string
	cols    []columnDef
	colIdx  map[string]int
	rows    [][]Value
	indexes map[string]*hashIndex // keyed by column name
}

// hashIndex is an equality index: normalized value → row positions.
type hashIndex struct {
	col     int
	buckets map[key][]int
}

func newHashIndex(col int) *hashIndex {
	return &hashIndex{col: col, buckets: make(map[key][]int)}
}

func (ix *hashIndex) add(rowPos int, row []Value) {
	k := row[ix.col].hashKey()
	ix.buckets[k] = append(ix.buckets[k], rowPos)
}

func (ix *hashIndex) rebuild(rows [][]Value) {
	ix.buckets = make(map[key][]int, len(rows))
	for i, row := range rows {
		ix.add(i, row)
	}
}

// Name returns the table's name as created.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of rows currently stored.
func (t *Table) NumRows() int { return len(t.rows) }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

func (t *Table) appendRow(row []Value) {
	pos := len(t.rows)
	t.rows = append(t.rows, row)
	for _, ix := range t.indexes {
		ix.add(pos, row)
	}
}

// DB is an in-memory database: a catalog of tables plus registered scalar
// functions. All public methods are safe for concurrent use; writes take an
// exclusive lock.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	funcs  map[string]ScalarFunc
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables: make(map[string]*Table),
		funcs:  make(map[string]ScalarFunc),
	}
}

// RegisterFunc registers (or replaces) a user-defined scalar function under
// the given case-insensitive name. Registered names shadow nothing: built-in
// functions take precedence at call sites with the same name.
func (db *DB) RegisterFunc(name string, fn ScalarFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToUpper(name)] = fn
}

// Table returns the named table, or nil if it does not exist.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateTable creates a table programmatically. Column kinds must be one of
// KindInt, KindFloat, KindString.
func (db *DB) CreateTable(name string, columns []string, kinds []Kind) error {
	if len(columns) != len(kinds) {
		return fmt.Errorf("sqldb: CreateTable %s: %d columns but %d kinds", name, len(columns), len(kinds))
	}
	defs := make([]columnDef, len(columns))
	for i := range columns {
		defs[i] = columnDef{Name: strings.ToLower(columns[i]), Type: kinds[i]}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.createTableLocked(strings.ToLower(name), defs, false)
}

func (db *DB) createTableLocked(name string, cols []columnDef, ifNotExists bool) error {
	if _, ok := db.tables[name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %q already exists", name)
	}
	colIdx := make(map[string]int, len(cols))
	for i, c := range cols {
		if _, dup := colIdx[c.Name]; dup {
			return fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, name)
		}
		colIdx[c.Name] = i
	}
	db.tables[name] = &Table{
		name:    name,
		cols:    cols,
		colIdx:  colIdx,
		indexes: make(map[string]*hashIndex),
	}
	return nil
}

// DropTable removes a table if it exists.
func (db *DB) DropTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// BulkInsert appends rows to a table without going through the SQL layer.
// Values are coerced to the column types. It is the fast path used when
// loading base relations; the declarative predicates still perform their
// preprocessing in SQL.
func (db *DB) BulkInsert(name string, rows [][]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[strings.ToLower(name)]
	if t == nil {
		return fmt.Errorf("sqldb: unknown table %q", name)
	}
	for _, row := range rows {
		if len(row) != len(t.cols) {
			return fmt.Errorf("sqldb: BulkInsert %s: row has %d values, want %d", name, len(row), len(t.cols))
		}
		stored := make([]Value, len(row))
		for i, v := range row {
			stored[i] = coerce(v, t.cols[i].Type)
		}
		t.appendRow(stored)
	}
	return nil
}

// CreateIndexOn creates a hash index on a single column programmatically.
// Creating an index that already exists is a no-op.
func (db *DB) CreateIndexOn(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[strings.ToLower(table)]
	if t == nil {
		return fmt.Errorf("sqldb: unknown table %q", table)
	}
	col := strings.ToLower(column)
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("sqldb: table %q has no column %q", table, column)
	}
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	ix := newHashIndex(ci)
	ix.rebuild(t.rows)
	t.indexes[col] = ix
	return nil
}

// Rows is the materialized result of a query.
type Rows struct {
	// Cols holds the output column names, lower-cased.
	Cols []string
	// Data holds the rows in result order.
	Data [][]Value
}

// ColumnIndex returns the position of the named output column, or -1.
func (r *Rows) ColumnIndex(name string) int {
	name = strings.ToLower(name)
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}
