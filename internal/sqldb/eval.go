package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// relCol identifies one column of an intermediate relation by the table
// alias that produced it and its (lower-case) column name.
type relCol struct {
	qual string
	name string
}

// relSchema is the compile-time shape of an intermediate relation.
type relSchema struct {
	cols []relCol
}

// resolve finds the position of a column reference. Unqualified names must
// be unambiguous across the schema.
func (s *relSchema) resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqldb: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("sqldb: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("sqldb: unknown column %s", name)
	}
	return found, nil
}

// evalCtx carries the runtime state an evaluated expression can see: the
// current source row and, in grouped queries, the finalized aggregate values.
type evalCtx struct {
	row  []Value
	aggs []Value
}

// evalFn is a compiled expression.
type evalFn func(ctx *evalCtx) (Value, error)

// aggSpec is one aggregate call discovered during compilation. Its arg is
// evaluated per input row; its slot indexes evalCtx.aggs.
type aggSpec struct {
	name     string // COUNT, SUM, AVG, MIN, MAX
	star     bool
	distinct bool
	arg      evalFn
}

// compiler compiles expressions against a schema, accumulating aggregate
// specs when aggregates are allowed.
type compiler struct {
	db        *DB
	schema    *relSchema
	allowAggs bool
	aggs      []aggSpec
}

// aggregate function names.
var aggNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// isAggregate reports whether the expression contains an aggregate call.
// MIN/MAX with two or more arguments are the scalar LEAST/GREATEST-style
// functions, not aggregates.
func isAggregate(e expr) bool {
	switch x := e.(type) {
	case *literal, *colRef:
		return false
	case *unaryExpr:
		return isAggregate(x.X)
	case *binaryExpr:
		return isAggregate(x.L) || isAggregate(x.R)
	case *funcCall:
		if aggNames[x.Name] && (x.Star || len(x.Args) == 1) {
			return true
		}
		for _, a := range x.Args {
			if isAggregate(a) {
				return true
			}
		}
		return false
	case *inExpr:
		return isAggregate(x.X)
	case *isNullExpr:
		return isAggregate(x.X)
	case *caseExpr:
		for _, w := range x.Whens {
			if isAggregate(w.Cond) || isAggregate(w.Then) {
				return true
			}
		}
		return x.Else != nil && isAggregate(x.Else)
	default:
		return false
	}
}

func (c *compiler) compile(e expr) (evalFn, error) {
	switch x := e.(type) {
	case *literal:
		v := x.Val
		return func(*evalCtx) (Value, error) { return v, nil }, nil

	case *colRef:
		idx, err := c.schema.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return func(ctx *evalCtx) (Value, error) { return ctx.row[idx], nil }, nil

	case *unaryExpr:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return func(ctx *evalCtx) (Value, error) {
				v, err := inner(ctx)
				if err != nil || v.IsNull() {
					return Null(), err
				}
				if v.Kind == KindInt {
					return Int(-v.I), nil
				}
				return Float(-v.AsFloat()), nil
			}, nil
		case "NOT":
			return func(ctx *evalCtx) (Value, error) {
				v, err := inner(ctx)
				if err != nil || v.IsNull() {
					return Null(), err
				}
				return Bool(!v.Truthy()), nil
			}, nil
		default:
			return nil, fmt.Errorf("sqldb: unknown unary operator %q", x.Op)
		}

	case *binaryExpr:
		return c.compileBinary(x)

	case *funcCall:
		return c.compileFunc(x)

	case *inExpr:
		return c.compileIn(x)

	case *isNullExpr:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(ctx *evalCtx) (Value, error) {
			v, err := inner(ctx)
			if err != nil {
				return Null(), err
			}
			return Bool(v.IsNull() != not), nil
		}, nil

	case *caseExpr:
		type compiledWhen struct{ cond, then evalFn }
		whens := make([]compiledWhen, len(x.Whens))
		for i, w := range x.Whens {
			cond, err := c.compile(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := c.compile(w.Then)
			if err != nil {
				return nil, err
			}
			whens[i] = compiledWhen{cond, then}
		}
		var elseFn evalFn
		if x.Else != nil {
			var err error
			elseFn, err = c.compile(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(ctx *evalCtx) (Value, error) {
			for _, w := range whens {
				v, err := w.cond(ctx)
				if err != nil {
					return Null(), err
				}
				if v.Truthy() {
					return w.then(ctx)
				}
			}
			if elseFn != nil {
				return elseFn(ctx)
			}
			return Null(), nil
		}, nil

	default:
		return nil, fmt.Errorf("sqldb: cannot compile expression of type %T", e)
	}
}

func (c *compiler) compileBinary(x *binaryExpr) (evalFn, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		op := x.Op
		return func(ctx *evalCtx) (Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return Null(), err
			}
			rv, err := r(ctx)
			if err != nil {
				return Null(), err
			}
			return arith(op, lv, rv)
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(ctx *evalCtx) (Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return Null(), err
			}
			rv, err := r(ctx)
			if err != nil {
				return Null(), err
			}
			cmp, ok := Compare(lv, rv)
			if !ok {
				return Null(), nil
			}
			var res bool
			switch op {
			case "=":
				res = cmp == 0
			case "<>":
				res = cmp != 0
			case "<":
				res = cmp < 0
			case "<=":
				res = cmp <= 0
			case ">":
				res = cmp > 0
			case ">=":
				res = cmp >= 0
			}
			return Bool(res), nil
		}, nil
	case "AND":
		return func(ctx *evalCtx) (Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return Null(), err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return Bool(false), nil
			}
			rv, err := r(ctx)
			if err != nil {
				return Null(), err
			}
			if !rv.IsNull() && !rv.Truthy() {
				return Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(true), nil
		}, nil
	case "OR":
		return func(ctx *evalCtx) (Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return Null(), err
			}
			if lv.Truthy() {
				return Bool(true), nil
			}
			rv, err := r(ctx)
			if err != nil {
				return Null(), err
			}
			if rv.Truthy() {
				return Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(false), nil
		}, nil
	default:
		return nil, fmt.Errorf("sqldb: unknown binary operator %q", x.Op)
	}
}

func (c *compiler) compileIn(x *inExpr) (evalFn, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	not := x.Not
	if x.Sub != nil {
		// Uncorrelated subquery: evaluate once at compile time.
		rows, err := c.db.execSelect(x.Sub)
		if err != nil {
			return nil, fmt.Errorf("sqldb: IN subquery: %w", err)
		}
		if len(rows.Cols) != 1 {
			return nil, fmt.Errorf("sqldb: IN subquery must return one column, got %d", len(rows.Cols))
		}
		set := make(map[key]struct{}, len(rows.Data))
		hasNull := false
		for _, row := range rows.Data {
			if row[0].IsNull() {
				hasNull = true
				continue
			}
			set[row[0].hashKey()] = struct{}{}
		}
		return func(ctx *evalCtx) (Value, error) {
			v, err := inner(ctx)
			if err != nil || v.IsNull() {
				return Null(), err
			}
			if _, ok := set[v.hashKey()]; ok {
				return Bool(!not), nil
			}
			if hasNull {
				return Null(), nil
			}
			return Bool(not), nil
		}, nil
	}
	items := make([]evalFn, len(x.List))
	for i, e := range x.List {
		fn, err := c.compile(e)
		if err != nil {
			return nil, err
		}
		items[i] = fn
	}
	return func(ctx *evalCtx) (Value, error) {
		v, err := inner(ctx)
		if err != nil || v.IsNull() {
			return Null(), err
		}
		sawNull := false
		for _, it := range items {
			iv, err := it(ctx)
			if err != nil {
				return Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if cmp, ok := Compare(v, iv); ok && cmp == 0 {
				return Bool(!not), nil
			}
		}
		if sawNull {
			return Null(), nil
		}
		return Bool(not), nil
	}, nil
}

func (c *compiler) compileFunc(x *funcCall) (evalFn, error) {
	// Aggregates first: in aggregate-allowed mode, MIN/MAX/COUNT/SUM/AVG
	// with a single argument (or *) compile to a slot read.
	if aggNames[x.Name] && (x.Star || len(x.Args) == 1) {
		if !c.allowAggs {
			return nil, fmt.Errorf("sqldb: aggregate %s not allowed here", x.Name)
		}
		spec := aggSpec{name: x.Name, star: x.Star, distinct: x.Distinct}
		if !x.Star {
			arg, err := c.compile(x.Args[0])
			if err != nil {
				return nil, err
			}
			spec.arg = arg
		}
		slot := len(c.aggs)
		c.aggs = append(c.aggs, spec)
		return func(ctx *evalCtx) (Value, error) { return ctx.aggs[slot], nil }, nil
	}

	args := make([]evalFn, len(x.Args))
	for i, a := range x.Args {
		fn, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = fn
	}
	evalArgs := func(ctx *evalCtx) ([]Value, error) {
		vals := make([]Value, len(args))
		for i, fn := range args {
			v, err := fn(ctx)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}

	if fn, ok := builtinFuncs[x.Name]; ok {
		if err := fn.checkArity(x.Name, len(args)); err != nil {
			return nil, err
		}
		impl := fn.impl
		return func(ctx *evalCtx) (Value, error) {
			vals, err := evalArgs(ctx)
			if err != nil {
				return Null(), err
			}
			return impl(vals)
		}, nil
	}

	// No locking here: compilation always happens under the public API's
	// database lock (Exec holds the write lock, Query the read lock).
	udf, ok := c.db.funcs[x.Name]
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown function %s", x.Name)
	}
	return func(ctx *evalCtx) (Value, error) {
		vals, err := evalArgs(ctx)
		if err != nil {
			return Null(), err
		}
		return udf(vals)
	}, nil
}

// builtin holds a built-in scalar function implementation and arity bounds.
type builtin struct {
	minArgs, maxArgs int // maxArgs < 0 means variadic
	impl             func(args []Value) (Value, error)
}

func (b builtin) checkArity(name string, n int) error {
	if n < b.minArgs || (b.maxArgs >= 0 && n > b.maxArgs) {
		return fmt.Errorf("sqldb: wrong number of arguments to %s: %d", name, n)
	}
	return nil
}

// anyNull reports whether any argument is NULL.
func anyNull(args []Value) bool {
	for _, a := range args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

func numeric1(f func(x float64) (Value, error)) builtin {
	return builtin{1, 1, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		return f(args[0].AsFloat())
	}}
}

var builtinFuncs = map[string]builtin{
	// MySQL LOG(x) is the natural logarithm; LOG(b, x) uses base b.
	// Non-positive arguments yield NULL, as in MySQL.
	"LOG": {1, 2, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		if len(args) == 2 {
			b, x := args[0].AsFloat(), args[1].AsFloat()
			if b <= 0 || b == 1 || x <= 0 {
				return Null(), nil
			}
			return Float(math.Log(x) / math.Log(b)), nil
		}
		x := args[0].AsFloat()
		if x <= 0 {
			return Null(), nil
		}
		return Float(math.Log(x)), nil
	}},
	"LN": numeric1(func(x float64) (Value, error) {
		if x <= 0 {
			return Null(), nil
		}
		return Float(math.Log(x)), nil
	}),
	"EXP": numeric1(func(x float64) (Value, error) { return Float(math.Exp(x)), nil }),
	"SQRT": numeric1(func(x float64) (Value, error) {
		if x < 0 {
			return Null(), nil
		}
		return Float(math.Sqrt(x)), nil
	}),
	"ABS": {1, 1, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		v := args[0]
		if v.Kind == KindInt {
			if v.I < 0 {
				return Int(-v.I), nil
			}
			return v, nil
		}
		return Float(math.Abs(v.AsFloat())), nil
	}},
	"POWER":   powerFn,
	"POW":     powerFn,
	"FLOOR":   numeric1(func(x float64) (Value, error) { return Int(int64(math.Floor(x))), nil }),
	"CEIL":    ceilFn,
	"CEILING": ceilFn,
	"ROUND": {1, 2, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		x := args[0].AsFloat()
		if len(args) == 1 {
			return Int(int64(math.Round(x))), nil
		}
		d := args[1].AsInt()
		scale := math.Pow(10, float64(d))
		return Float(math.Round(x*scale) / scale), nil
	}},
	"MOD": {2, 2, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		return arith("%", args[0], args[1])
	}},
	"LEAST": {2, -1, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		best := args[0]
		for _, a := range args[1:] {
			if cmp, ok := Compare(a, best); ok && cmp < 0 {
				best = a
			}
		}
		return best, nil
	}},
	"GREATEST": {2, -1, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		best := args[0]
		for _, a := range args[1:] {
			if cmp, ok := Compare(a, best); ok && cmp > 0 {
				best = a
			}
		}
		return best, nil
	}},
	// String functions operate on runes so multi-byte text counts characters.
	"LENGTH":      lengthFn,
	"CHAR_LENGTH": lengthFn,
	"SUBSTRING":   substringFn,
	"SUBSTR":      substringFn,
	"CONCAT": {1, -1, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.AsString())
		}
		return String(sb.String()), nil
	}},
	"UPPER": stringFn(strings.ToUpper),
	"UCASE": stringFn(strings.ToUpper),
	"LOWER": stringFn(strings.ToLower),
	"LCASE": stringFn(strings.ToLower),
	"TRIM":  stringFn(strings.TrimSpace),
	"REVERSE": stringFn(func(s string) string {
		r := []rune(s)
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return string(r)
	}),
	"REPLACE": {3, 3, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		return String(strings.ReplaceAll(args[0].AsString(), args[1].AsString(), args[2].AsString())), nil
	}},
	// LOCATE(substr, str [, pos]) is 1-based; 0 means not found.
	"LOCATE": {2, 3, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		sub := []rune(args[0].AsString())
		s := []rune(args[1].AsString())
		start := 1
		if len(args) == 3 {
			start = int(args[2].AsInt())
			if start < 1 {
				start = 1
			}
		}
		if start > len(s)+1 {
			return Int(0), nil
		}
		idx := strings.Index(string(s[start-1:]), string(sub))
		if idx < 0 {
			return Int(0), nil
		}
		// Convert byte offset back to rune offset.
		runesBefore := len([]rune(string(s[start-1:])[:idx]))
		return Int(int64(start + runesBefore)), nil
	}},
	"COALESCE": {1, -1, func(args []Value) (Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	}},
	"IFNULL": {2, 2, func(args []Value) (Value, error) {
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	}},
	"IF": {3, 3, func(args []Value) (Value, error) {
		if args[0].Truthy() {
			return args[1], nil
		}
		return args[2], nil
	}},
	// SQL_LIKE backs the LIKE operator: '%' matches any run, '_' one
	// character; comparison is case-insensitive like MySQL's default
	// collation.
	"SQL_LIKE": {2, 2, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		s := strings.ToUpper(args[0].AsString())
		pat := strings.ToUpper(args[1].AsString())
		return Bool(likeMatch([]rune(s), []rune(pat))), nil
	}},
}

// likeMatch implements LIKE with linear backtracking over '%'.
func likeMatch(s, pat []rune) bool {
	si, pi := 0, 0
	starPat, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			starPat, starS = pi, si
			pi++
		case starPat >= 0:
			starS++
			si = starS
			pi = starPat + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

var powerFn = builtin{2, 2, func(args []Value) (Value, error) {
	if anyNull(args) {
		return Null(), nil
	}
	return Float(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
}}

var ceilFn = builtin{1, 1, func(args []Value) (Value, error) {
	if anyNull(args) {
		return Null(), nil
	}
	return Int(int64(math.Ceil(args[0].AsFloat()))), nil
}}

var lengthFn = builtin{1, 1, func(args []Value) (Value, error) {
	if anyNull(args) {
		return Null(), nil
	}
	return Int(int64(len([]rune(args[0].AsString())))), nil
}}

var substringFn = builtin{2, 3, func(args []Value) (Value, error) {
	if anyNull(args) {
		return Null(), nil
	}
	r := []rune(args[0].AsString())
	pos := int(args[1].AsInt())
	// MySQL: position is 1-based; negative counts from the end; 0 yields "".
	switch {
	case pos == 0:
		return String(""), nil
	case pos < 0:
		pos = len(r) + pos + 1
		if pos < 1 {
			return String(""), nil
		}
	}
	if pos > len(r) {
		return String(""), nil
	}
	start := pos - 1
	end := len(r)
	if len(args) == 3 {
		n := int(args[2].AsInt())
		if n <= 0 {
			return String(""), nil
		}
		if start+n < end {
			end = start + n
		}
	}
	return String(string(r[start:end])), nil
}}

func stringFn(f func(string) string) builtin {
	return builtin{1, 1, func(args []Value) (Value, error) {
		if anyNull(args) {
			return Null(), nil
		}
		return String(f(args[0].AsString())), nil
	}}
}
