package sqldb

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// mustExec fails the test on error.
func mustExec(t *testing.T, db *DB, sql string, args ...Value) int {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return rows
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE people (id INT, name VARCHAR(64), age INT, score DOUBLE)")
	mustExec(t, db, `INSERT INTO people (id, name, age, score) VALUES
		(1, 'alice', 30, 1.5),
		(2, 'bob', 25, 2.5),
		(3, 'carol', 35, 3.5),
		(4, 'dave', 25, 4.5)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT id, name FROM people ORDER BY id")
	if len(rows.Data) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows.Data))
	}
	if rows.Data[0][1].AsString() != "alice" {
		t.Errorf("first row name = %v", rows.Data[0][1])
	}
	if got := rows.Cols; !reflect.DeepEqual(got, []string{"id", "name"}) {
		t.Errorf("cols = %v", got)
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("duplicate CREATE TABLE should fail")
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INT)")
}

func TestDropTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Fatal("dropping a missing table should fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS t")
}

func TestWhereComparisons(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"age = 25", 2},
		{"age <> 25", 2},
		{"age != 25", 2},
		{"age < 30", 2},
		{"age <= 30", 3},
		{"age > 30", 1},
		{"age >= 30", 2},
		{"name = 'bob'", 1},
		{"age = 25 AND score > 3", 1},
		{"age = 25 OR age = 35", 3},
		{"NOT age = 25", 2},
		{"age IN (25, 35)", 3},
		{"age NOT IN (25, 35)", 1},
		{"name IS NULL", 0},
		{"name IS NOT NULL", 4},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, "SELECT id FROM people WHERE "+c.where)
		if len(rows.Data) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(rows.Data), c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	db := New()
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2", Int(3)},
		{"7 - 2 * 3", Int(1)},
		{"(7 - 2) * 3", Int(15)},
		{"7 / 2", Float(3.5)},
		{"7 % 4", Int(3)},
		{"-5 + 2", Int(-3)},
		{"1.5 + 1", Float(2.5)},
		{"2 * 2.5", Float(5)},
		{"1 / 0", Null()}, // MySQL: division by zero is NULL
	}
	for _, c := range cases {
		rows := mustQuery(t, db, "SELECT "+c.expr)
		got := rows.Data[0][0]
		if got != c.want {
			t.Errorf("SELECT %s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	db := New()
	cases := []struct {
		expr string
		want float64
	}{
		{"LOG(EXP(1))", 1},
		{"LOG(2, 8)", 3},
		{"EXP(0)", 1},
		{"SQRT(16)", 4},
		{"ABS(-3)", 3},
		{"POWER(2, 10)", 1024},
		{"POW(3, 2)", 9},
		{"MOD(10, 3)", 1},
		{"ROUND(2.6)", 3},
		{"ROUND(2.345, 2)", 2.35},
		{"FLOOR(2.9)", 2},
		{"CEIL(2.1)", 3},
		{"LEAST(3, 1, 2)", 1},
		{"GREATEST(3, 1, 2)", 3},
		{"LENGTH('hello')", 5},
		{"CHAR_LENGTH('héllo')", 5},
		{"LOCATE('l', 'hello')", 3},
		{"LOCATE('l', 'hello', 4)", 4},
		{"LOCATE('z', 'hello')", 0},
		{"COALESCE(NULL, 7)", 7},
		{"IFNULL(NULL, 9)", 9},
		{"IF(1 < 2, 10, 20)", 10},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, "SELECT "+c.expr)
		if got := rows.Data[0][0].AsFloat(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SELECT %s = %v, want %v", c.expr, got, c.want)
		}
	}
	strCases := []struct {
		expr, want string
	}{
		{"UPPER('abc')", "ABC"},
		{"LOWER('ABC')", "abc"},
		{"CONCAT('a', 'b', 'c')", "abc"},
		{"SUBSTRING('hello', 2, 3)", "ell"},
		{"SUBSTRING('hello', 2)", "ello"},
		{"SUBSTRING('hello', -3, 2)", "ll"},
		{"REPLACE('a b c', ' ', '$')", "a$b$c"},
		{"REVERSE('abc')", "cba"},
		{"TRIM('  x  ')", "x"},
	}
	for _, c := range strCases {
		rows := mustQuery(t, db, "SELECT "+c.expr)
		if got := rows.Data[0][0].AsString(); got != c.want {
			t.Errorf("SELECT %s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestLogOfNonPositiveIsNull(t *testing.T) {
	db := New()
	for _, e := range []string{"LOG(0)", "LOG(-1)", "SQRT(-1)"} {
		rows := mustQuery(t, db, "SELECT "+e)
		if !rows.Data[0][0].IsNull() {
			t.Errorf("%s should be NULL, got %v", e, rows.Data[0][0])
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT age, COUNT(*) AS n, SUM(score) AS total, AVG(score) AS mean,
		       MIN(score) AS lo, MAX(score) AS hi
		FROM people GROUP BY age ORDER BY age`)
	if len(rows.Data) != 3 {
		t.Fatalf("got %d groups, want 3", len(rows.Data))
	}
	// age=25: bob(2.5), dave(4.5)
	first := rows.Data[0]
	if first[0].AsInt() != 25 || first[1].AsInt() != 2 {
		t.Errorf("group 25: %v", first)
	}
	if got := first[2].AsFloat(); got != 7.0 {
		t.Errorf("SUM = %v, want 7", got)
	}
	if got := first[3].AsFloat(); got != 3.5 {
		t.Errorf("AVG = %v, want 3.5", got)
	}
	if first[4].AsFloat() != 2.5 || first[5].AsFloat() != 4.5 {
		t.Errorf("MIN/MAX = %v/%v", first[4], first[5])
	}
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT COUNT(DISTINCT age) FROM people")
	if got := rows.Data[0][0].AsInt(); got != 3 {
		t.Errorf("COUNT(DISTINCT age) = %d, want 3", got)
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE empty (x INT)")
	rows := mustQuery(t, db, "SELECT COUNT(*), SUM(x), AVG(x), MIN(x) FROM empty")
	if len(rows.Data) != 1 {
		t.Fatalf("aggregate over empty table should return one row, got %d", len(rows.Data))
	}
	if rows.Data[0][0].AsInt() != 0 {
		t.Errorf("COUNT(*) = %v, want 0", rows.Data[0][0])
	}
	for i := 1; i < 4; i++ {
		if !rows.Data[0][i].IsNull() {
			t.Errorf("aggregate %d over empty input should be NULL, got %v", i, rows.Data[0][i])
		}
	}
}

func TestGroupByEmptyInputNoRows(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE empty (x INT)")
	rows := mustQuery(t, db, "SELECT x, COUNT(*) FROM empty GROUP BY x")
	if len(rows.Data) != 0 {
		t.Fatalf("GROUP BY over empty table should return no rows, got %d", len(rows.Data))
	}
}

func TestHavingWithAlias(t *testing.T) {
	// The paper's filtering queries use HAVING score >= θ where score is a
	// select alias that does not collide with a source column.
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT age, SUM(score) AS total FROM people
		GROUP BY age HAVING total >= 3.5 ORDER BY age`)
	if len(rows.Data) != 2 {
		t.Fatalf("got %d groups, want 2 (25→7.0, 35→3.5): %v", len(rows.Data), rows.Data)
	}
}

func TestHavingAliasCollidesWithColumn(t *testing.T) {
	// When an alias collides with a real column, the source column wins
	// (substitution only applies to otherwise-unresolvable names).
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT age, SUM(score) AS score FROM people
		GROUP BY age HAVING score >= 3.5 ORDER BY age`)
	if len(rows.Data) != 1 || rows.Data[0][0].AsInt() != 35 {
		t.Fatalf("collision should resolve to source column: %v", rows.Data)
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT age, COUNT(*) AS n FROM people GROUP BY age HAVING COUNT(*) > 1`)
	if len(rows.Data) != 1 || rows.Data[0][0].AsInt() != 25 {
		t.Fatalf("HAVING COUNT(*) > 1: %v", rows.Data)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT id FROM people ORDER BY score DESC LIMIT 2")
	if len(rows.Data) != 2 || rows.Data[0][0].AsInt() != 4 || rows.Data[1][0].AsInt() != 3 {
		t.Fatalf("ORDER BY DESC LIMIT: %v", rows.Data)
	}
}

func TestOrderByPosition(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT name, age FROM people ORDER BY 2 DESC, 1")
	if rows.Data[0][0].AsString() != "carol" {
		t.Fatalf("ORDER BY position: %v", rows.Data)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT DISTINCT age FROM people ORDER BY age")
	if len(rows.Data) != 3 {
		t.Fatalf("DISTINCT: got %d, want 3", len(rows.Data))
	}
}

func TestJoinCommaSyntax(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE pets (owner INT, pet VARCHAR(32))")
	mustExec(t, db, "INSERT INTO pets VALUES (1,'cat'), (1,'dog'), (3,'fish')")
	rows := mustQuery(t, db, `
		SELECT P.name, T.pet FROM people P, pets T
		WHERE P.id = T.owner ORDER BY P.name, T.pet`)
	want := [][]string{{"alice", "cat"}, {"alice", "dog"}, {"carol", "fish"}}
	if len(rows.Data) != 3 {
		t.Fatalf("join rows = %v", rows.Data)
	}
	for i, w := range want {
		if rows.Data[i][0].AsString() != w[0] || rows.Data[i][1].AsString() != w[1] {
			t.Errorf("row %d = %v, want %v", i, rows.Data[i], w)
		}
	}
}

func TestInnerJoinOnSyntax(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE pets (owner INT, pet VARCHAR(32))")
	mustExec(t, db, "INSERT INTO pets VALUES (1,'cat'), (3,'fish')")
	rows := mustQuery(t, db, `
		SELECT P.name, T.pet FROM people P INNER JOIN pets T ON P.id = T.owner
		ORDER BY P.name`)
	if len(rows.Data) != 2 || rows.Data[0][0].AsString() != "alice" {
		t.Fatalf("INNER JOIN: %v", rows.Data)
	}
}

func TestJoinWithIndex(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE pets (owner INT, pet VARCHAR(32))")
	mustExec(t, db, "INSERT INTO pets VALUES (1,'cat'), (1,'dog'), (3,'fish')")
	mustExec(t, db, "CREATE INDEX pets_owner ON pets (owner)")
	rows := mustQuery(t, db, `
		SELECT P.name, T.pet FROM people P, pets T
		WHERE P.id = T.owner ORDER BY P.name, T.pet`)
	if len(rows.Data) != 3 {
		t.Fatalf("indexed join rows = %v", rows.Data)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (x INT, y INT)")
	mustExec(t, db, "CREATE TABLE c (y INT, z VARCHAR(8))")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, db, "INSERT INTO c VALUES (10, 'ten'), (20, 'twenty')")
	rows := mustQuery(t, db, `
		SELECT a.x, c.z FROM a, b, c WHERE a.x = b.x AND b.y = c.y ORDER BY a.x`)
	if len(rows.Data) != 2 || rows.Data[1][1].AsString() != "twenty" {
		t.Fatalf("three-way join: %v", rows.Data)
	}
}

func TestCrossJoinNoCondition(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (10), (20), (30)")
	rows := mustQuery(t, db, "SELECT x, y FROM a, b")
	if len(rows.Data) != 6 {
		t.Fatalf("cross join: got %d rows, want 6", len(rows.Data))
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT P1.name, P2.name FROM people P1, people P2
		WHERE P1.age = P2.age AND P1.id < P2.id`)
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "bob" {
		t.Fatalf("self join: %v", rows.Data)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT S.n FROM (SELECT COUNT(*) AS n FROM people) S`)
	if rows.Data[0][0].AsInt() != 4 {
		t.Fatalf("subquery in FROM: %v", rows.Data)
	}
}

func TestNestedSubqueries(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT T.age, T.n FROM (
			SELECT S.age AS age, COUNT(*) AS n
			FROM (SELECT age FROM people WHERE age < 35) S
			GROUP BY S.age
		) T ORDER BY T.age`)
	if len(rows.Data) != 2 || rows.Data[0][1].AsInt() != 2 {
		t.Fatalf("nested subqueries: %v", rows.Data)
	}
}

func TestInSubquery(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE vip (id INT)")
	mustExec(t, db, "INSERT INTO vip VALUES (1), (3)")
	rows := mustQuery(t, db, "SELECT name FROM people WHERE id IN (SELECT id FROM vip) ORDER BY name")
	if len(rows.Data) != 2 || rows.Data[0][0].AsString() != "alice" {
		t.Fatalf("IN subquery: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT name FROM people WHERE id NOT IN (SELECT id FROM vip) ORDER BY name")
	if len(rows.Data) != 2 || rows.Data[0][0].AsString() != "bob" {
		t.Fatalf("NOT IN subquery: %v", rows.Data)
	}
}

func TestUnionAll(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	rows := mustQuery(t, db, "SELECT x FROM a UNION ALL SELECT x + 10 FROM a UNION ALL SELECT 99")
	if len(rows.Data) != 5 {
		t.Fatalf("UNION ALL: got %d rows, want 5", len(rows.Data))
	}
}

func TestInsertSelect(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE adults (id INT, name VARCHAR(64))")
	n := mustExec(t, db, "INSERT INTO adults (id, name) SELECT id, name FROM people WHERE age >= 30")
	if n != 2 {
		t.Fatalf("INSERT SELECT affected %d, want 2", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM adults")
	if rows.Data[0][0].AsInt() != 2 {
		t.Fatalf("adults count: %v", rows.Data)
	}
}

func TestInsertSelectSameTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (x INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO t SELECT x + 10 FROM t")
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rows.Data[0][0].AsInt() != 4 {
		t.Fatalf("self insert-select: %v", rows.Data)
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	n := mustExec(t, db, "DELETE FROM people WHERE age = 25")
	if n != 2 {
		t.Fatalf("DELETE affected %d, want 2", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM people")
	if rows.Data[0][0].AsInt() != 2 {
		t.Fatalf("after delete: %v", rows.Data)
	}
	n = mustExec(t, db, "DELETE FROM people")
	if n != 2 {
		t.Fatalf("DELETE all affected %d, want 2", n)
	}
}

func TestDeleteMaintainsIndex(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE INDEX people_age ON people (age)")
	mustExec(t, db, "DELETE FROM people WHERE age = 25")
	// Index-backed join must not see deleted rows.
	mustExec(t, db, "CREATE TABLE probe (age INT)")
	mustExec(t, db, "INSERT INTO probe VALUES (25), (30)")
	rows := mustQuery(t, db, "SELECT P.name FROM probe R, people P WHERE R.age = P.age")
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "alice" {
		t.Fatalf("index after delete: %v", rows.Data)
	}
}

func TestPlaceholders(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT name FROM people WHERE age = ? AND score > ?", Int(25), Float(3))
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "dave" {
		t.Fatalf("placeholders: %v", rows.Data)
	}
	if _, err := db.Query("SELECT ? ", Int(1), Int(2)); err == nil {
		t.Fatal("extra arguments should error")
	}
	if _, err := db.Query("SELECT ? + ?", Int(1)); err == nil {
		t.Fatal("missing arguments should error")
	}
}

func TestStringEscapes(t *testing.T) {
	db := New()
	rows := mustQuery(t, db, "SELECT 'it''s', 'a\\'b'")
	if rows.Data[0][0].AsString() != "it's" || rows.Data[0][1].AsString() != "a'b" {
		t.Fatalf("escapes: %v", rows.Data)
	}
}

func TestComments(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		-- leading comment
		SELECT id /* block */ FROM people -- trailing
		WHERE id = 1`)
	if len(rows.Data) != 1 {
		t.Fatalf("comments: %v", rows.Data)
	}
}

func TestUDF(t *testing.T) {
	db := newTestDB(t)
	db.RegisterFunc("DOUBLEIT", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("DOUBLEIT takes 1 arg")
		}
		return Float(2 * args[0].AsFloat()), nil
	})
	rows := mustQuery(t, db, "SELECT DOUBLEIT(score) FROM people WHERE id = 1")
	if got := rows.Data[0][0].AsFloat(); got != 3.0 {
		t.Fatalf("UDF: %v", got)
	}
	if _, err := db.Query("SELECT NOSUCHFUNC(1)"); err == nil {
		t.Fatal("unknown function should error")
	}
}

func TestCaseExpression(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT name, CASE WHEN age < 30 THEN 'young' ELSE 'old' END AS bucket
		FROM people ORDER BY id`)
	if rows.Data[0][1].AsString() != "old" || rows.Data[1][1].AsString() != "young" {
		t.Fatalf("CASE: %v", rows.Data)
	}
}

func TestExecScript(t *testing.T) {
	db := New()
	_, err := db.ExecScript(`
		CREATE TABLE t (x INT);
		INSERT INTO t VALUES (1), (2);
		INSERT INTO t VALUES (3);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rows.Data[0][0].AsInt() != 3 {
		t.Fatalf("ExecScript: %v", rows.Data)
	}
}

func TestUnionAllMismatchedArity(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("SELECT id FROM people UNION ALL SELECT id, name FROM people"); err == nil {
		t.Fatal("mismatched UNION arity should error")
	}
}

func TestParseErrors(t *testing.T) {
	db := New()
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM",
		"SELECT 1 FROM (SELECT 2)", // derived table without alias
		"CREATE TABLE t (x BLOB)",
		"SELECT 1 UNION SELECT 2", // only UNION ALL
		"INSERT INTO t",
		"SELECT * FROM t WHERE",
		"SELECT 'unterminated",
		"SELECT 1 2",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("SELECT * FROM nosuch"); err == nil {
		t.Fatal("unknown table should error")
	}
	if _, err := db.Query("SELECT nosuch FROM people"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := db.Query("SELECT x.id FROM people"); err == nil {
		t.Fatal("unknown qualifier should error")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("SELECT id FROM people P1, people P2 WHERE P1.id = P2.id"); err == nil {
		t.Fatal("ambiguous column should error")
	}
}

func TestStarQualified(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT P.* FROM people P WHERE P.id = 1")
	if len(rows.Cols) != 4 {
		t.Fatalf("qualified star: cols = %v", rows.Cols)
	}
}

func TestNullOrderingAscFirst(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (x INT, tag VARCHAR(4))")
	mustExec(t, db, "INSERT INTO t VALUES (2,'b'), (NULL,'n'), (1,'a')")
	rows := mustQuery(t, db, "SELECT tag FROM t ORDER BY x")
	got := []string{rows.Data[0][0].AsString(), rows.Data[1][0].AsString(), rows.Data[2][0].AsString()}
	if !reflect.DeepEqual(got, []string{"n", "a", "b"}) {
		t.Fatalf("NULL ordering: %v", got)
	}
}

func TestNullArithmeticPropagates(t *testing.T) {
	db := New()
	rows := mustQuery(t, db, "SELECT NULL + 1, CONCAT('a', NULL), UPPER(NULL)")
	for i := range rows.Data[0] {
		if !rows.Data[0][i].IsNull() {
			t.Errorf("expr %d should be NULL, got %v", i, rows.Data[0][i])
		}
	}
}

func TestAggregateInsideExpression(t *testing.T) {
	// The Jaccard SQL uses COUNT(*)/(S1.len+S2.len-COUNT(*)).
	db := New()
	mustExec(t, db, "CREATE TABLE t (g INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,5), (1,5), (2,7)")
	rows := mustQuery(t, db, `
		SELECT g, COUNT(*)/(v + 2 - COUNT(*)) AS score FROM t GROUP BY g ORDER BY g`)
	if got := rows.Data[0][1].AsFloat(); math.Abs(got-2.0/5.0) > 1e-12 {
		t.Fatalf("agg inside expr: %v", got)
	}
}

func TestBulkInsertAndTableAccessors(t *testing.T) {
	db := New()
	if err := db.CreateTable("bulk", []string{"tid", "token"}, []Kind{KindInt, KindString}); err != nil {
		t.Fatal(err)
	}
	err := db.BulkInsert("bulk", [][]Value{
		{Int(1), String("ab")},
		{Int(1), String("bc")},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("bulk")
	if tab == nil || tab.NumRows() != 2 {
		t.Fatalf("bulk table: %+v", tab)
	}
	if !reflect.DeepEqual(tab.Columns(), []string{"tid", "token"}) {
		t.Fatalf("columns: %v", tab.Columns())
	}
	if err := db.BulkInsert("bulk", [][]Value{{Int(1)}}); err == nil {
		t.Fatal("short row should error")
	}
	if err := db.BulkInsert("nosuch", nil); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestCreateIndexOnErrors(t *testing.T) {
	db := newTestDB(t)
	if err := db.CreateIndexOn("nosuch", "x"); err == nil {
		t.Fatal("unknown table")
	}
	if err := db.CreateIndexOn("people", "nosuch"); err == nil {
		t.Fatal("unknown column")
	}
	if err := db.CreateIndexOn("people", "age"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := db.CreateIndexOn("people", "age"); err != nil {
		t.Fatal(err)
	}
}

// TestPaperQGramGenerationSQL runs the paper's Appendix A.1 q-gram
// generation statement almost verbatim (INTEGERS-table join) and checks the
// produced grams against the tokenize package's contract.
func TestPaperQGramGenerationSQL(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE integers (i INT)")
	for i := 1; i <= 64; i++ {
		mustExec(t, db, "INSERT INTO integers VALUES (?)", Int(int64(i)))
	}
	mustExec(t, db, "CREATE TABLE base_table (tid INT, string VARCHAR(255))")
	mustExec(t, db, "INSERT INTO base_table VALUES (1, 'db lab')")
	mustExec(t, db, "CREATE TABLE base_tokens (tid INT, token VARCHAR(8))")
	// q = 3: pad with q-1 = 2 '$'s.
	q := 3
	mustExec(t, db, `
		INSERT INTO base_tokens (tid, token)
		SELECT tid, SUBSTRING(CONCAT('$$', UPPER(REPLACE(string, ' ', '$$')), '$$'), integers.i, ?)
		FROM integers INNER JOIN base_table
		ON integers.i <= LENGTH(REPLACE(string, ' ', '$$')) + ?`, Int(int64(q)), Int(int64(q-1)))
	rows := mustQuery(t, db, "SELECT token FROM base_tokens ORDER BY token")
	want := []string{"$$D", "$$L", "$DB", "$LA", "AB$", "B$$", "B$$", "DB$", "LAB"}
	var got []string
	for _, r := range rows.Data {
		got = append(got, r[0].AsString())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SQL q-gram generation:\n got %v\nwant %v", got, want)
	}
}

// TestPaperIntersectQuery exercises the exact SQL shape of Figure 4.1.
func TestPaperIntersectQuery(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE base_tokens (tid INT, token VARCHAR(8))")
	mustExec(t, db, "CREATE TABLE query_tokens (token VARCHAR(8))")
	mustExec(t, db, "CREATE INDEX bt_token ON base_tokens (token)")
	mustExec(t, db, "INSERT INTO base_tokens VALUES (1,'ab'),(1,'bc'),(2,'ab'),(2,'xy'),(3,'zz')")
	mustExec(t, db, "INSERT INTO query_tokens VALUES ('ab'),('bc'),('qq')")
	rows := mustQuery(t, db, `
		SELECT R1.tid, COUNT(*) AS score
		FROM base_tokens R1, query_tokens R2
		WHERE R1.token = R2.token
		GROUP BY R1.tid
		ORDER BY score DESC, R1.tid`)
	if len(rows.Data) != 2 {
		t.Fatalf("intersect: %v", rows.Data)
	}
	if rows.Data[0][0].AsInt() != 1 || rows.Data[0][1].AsInt() != 2 {
		t.Fatalf("intersect first: %v", rows.Data[0])
	}
	if rows.Data[1][0].AsInt() != 2 || rows.Data[1][1].AsInt() != 1 {
		t.Fatalf("intersect second: %v", rows.Data[1])
	}
}

func TestStringsOfKeywordsAsIdentifiers(t *testing.T) {
	// 'score', 'token' etc. are not reserved; quoted identifiers work too.
	db := New()
	mustExec(t, db, "CREATE TABLE `select_like` (token VARCHAR(4))")
	mustExec(t, db, "INSERT INTO select_like VALUES ('x')")
	rows := mustQuery(t, db, "SELECT token FROM select_like")
	if len(rows.Data) != 1 {
		t.Fatalf("quoted ident: %v", rows.Data)
	}
}

func TestColumnIndexHelper(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT id, name AS who FROM people LIMIT 1")
	if rows.ColumnIndex("who") != 1 || rows.ColumnIndex("id") != 0 || rows.ColumnIndex("zzz") != -1 {
		t.Fatalf("ColumnIndex: %v", rows.Cols)
	}
}

func TestValueHelpers(t *testing.T) {
	if !Null().IsNull() || Int(1).IsNull() {
		t.Fatal("IsNull")
	}
	if Bool(true).AsInt() != 1 || Bool(false).AsInt() != 0 {
		t.Fatal("Bool")
	}
	if Int(3).AsFloat() != 3 || Float(2.5).AsInt() != 2 {
		t.Fatal("conversions")
	}
	if String("1.5").AsFloat() != 1.5 || String("7").AsInt() != 7 {
		t.Fatal("string numeric coercion")
	}
	if Int(42).AsString() != "42" {
		t.Fatal("AsString")
	}
	if !strings.Contains(Kind(99).String(), "Kind") {
		t.Fatal("Kind.String fallback")
	}
	if KindInt.String() != "INT" || KindNull.String() != "NULL" || KindFloat.String() != "DOUBLE" || KindString.String() != "VARCHAR" {
		t.Fatal("Kind.String")
	}
}

func TestCompareMixedTypes(t *testing.T) {
	if cmp, ok := Compare(Int(1), Float(1.0)); !ok || cmp != 0 {
		t.Fatal("1 = 1.0")
	}
	if cmp, ok := Compare(Int(2), Float(1.5)); !ok || cmp != 1 {
		t.Fatal("2 > 1.5")
	}
	if _, ok := Compare(Null(), Int(1)); ok {
		t.Fatal("NULL compare should be unknown")
	}
	if cmp, ok := Compare(String("a"), String("b")); !ok || cmp != -1 {
		t.Fatal("string compare")
	}
	// Numeric/string comparison coerces to numbers, as MySQL does.
	if cmp, ok := Compare(String("10"), Int(9)); !ok || cmp != 1 {
		t.Fatal("string/number compare")
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	db := New()
	if _, err := db.Query("CREATE TABLE t (x INT)"); err == nil {
		t.Fatal("Query on DDL should error")
	}
}

func TestTableNames(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE b (x INT)")
	mustExec(t, db, "CREATE TABLE a (x INT)")
	if got := db.TableNames(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("TableNames: %v", got)
	}
}
