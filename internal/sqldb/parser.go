package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser for the engine's SQL subset.
type parser struct {
	toks   []token
	pos    int
	params []Value
	nparam int
}

// reserved words that terminate expression/alias parsing.
var reservedWords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "UNION": true, "ALL": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"AS": true, "ON": true, "JOIN": true, "INNER": true, "CROSS": true,
	"INSERT": true, "INTO": true, "VALUES": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "DROP": true, "DELETE": true, "DISTINCT": true, "ASC": true,
	"DESC": true, "IF": true, "EXISTS": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "BETWEEN": true, "LIKE": true,
	"LEFT": true, "OUTER": true, "TRUE": true, "FALSE": true,
}

// parseSQL parses one statement (a trailing semicolon is allowed).
func parseSQL(src string, args []Value) (stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: args}
	s, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	if p.nparam != len(args) {
		return nil, fmt.Errorf("sqldb: statement has %d placeholders but %d arguments given", p.nparam, len(args))
	}
	return s, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return p.errorf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) expectKeyword(kw string) error {
	if p.acceptKeyword(kw) {
		return nil
	}
	return p.errorf("expected %s, found %q", kw, p.cur().text)
}

func (p *parser) parseStatement() (stmt, error) {
	switch {
	case p.at(tokIdent, "SELECT"):
		return p.parseSelect()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	case p.acceptKeyword("CREATE"):
		return p.parseCreate()
	case p.acceptKeyword("DROP"):
		return p.parseDrop()
	case p.acceptKeyword("DELETE"):
		return p.parseDelete()
	case p.at(tokOp, "("):
		return p.parseSelect()
	default:
		return nil, p.errorf("unsupported statement beginning with %q", p.cur().text)
	}
}

func (p *parser) parseCreate() (stmt, error) {
	switch {
	case p.acceptKeyword("TABLE"):
		st := &createTableStmt{}
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.parseIdent("table name")
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			kind, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, columnDef{Name: strings.ToLower(col), Type: kind})
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return st, nil
	case p.acceptKeyword("INDEX"):
		st := &createIndexStmt{}
		name, err := p.parseIdent("index name")
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		tbl, err := p.parseIdent("table name")
		if err != nil {
			return nil, err
		}
		st.Table = tbl
		if err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		col, err := p.parseIdent("column name")
		if err != nil {
			return nil, err
		}
		st.Column = strings.ToLower(col)
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return st, nil
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

// parseColumnType reads a type name with an optional (n[,m]) suffix.
func (p *parser) parseColumnType() (Kind, error) {
	name, err := p.parseIdent("column type")
	if err != nil {
		return KindNull, err
	}
	if p.accept(tokOp, "(") {
		for !p.accept(tokOp, ")") {
			if p.at(tokEOF, "") {
				return KindNull, p.errorf("unterminated type parameters")
			}
			p.pos++
		}
	}
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return KindInt, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return KindString, nil
	default:
		return KindNull, p.errorf("unsupported column type %q", name)
	}
}

func (p *parser) parseDrop() (stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &dropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) parseDelete() (stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	st := &deleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseInsert() (stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	st := &insertStmt{Table: name}
	if p.accept(tokOp, "(") {
		for {
			col, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, strings.ToLower(col))
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKeyword("VALUES"):
		for {
			if err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			var row []expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(tokOp, ",") {
					continue
				}
				break
			}
			if err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		return st, nil
	case p.at(tokIdent, "SELECT") || p.at(tokOp, "("):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	default:
		return nil, p.errorf("expected VALUES or SELECT in INSERT")
	}
}

// parseSelect parses a SELECT, including UNION ALL chains. A leading '('
// wrapping the whole select is tolerated.
func (p *parser) parseSelect() (*selectStmt, error) {
	if p.accept(tokOp, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return p.parseUnionTail(sel)
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &selectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		refs, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		sel.From = refs
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := orderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	return p.parseUnionTail(sel)
}

func (p *parser) parseUnionTail(sel *selectStmt) (*selectStmt, error) {
	if p.acceptKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = next
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.accept(tokOp, "*") {
		return selectItem{Star: true}, nil
	}
	// T.* form: ident '.' '*'
	if p.cur().kind == tokIdent && !reservedWords[strings.ToUpper(p.cur().text)] &&
		p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokOp && p.toks[p.pos+2].text == "*" {
		tbl := strings.ToLower(p.cur().text)
		p.pos += 3
		return selectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent("alias")
		if err != nil {
			return selectItem{}, err
		}
		item.Alias = strings.ToLower(alias)
	} else if p.cur().kind == tokIdent && !reservedWords[strings.ToUpper(p.cur().text)] {
		item.Alias = strings.ToLower(p.cur().text)
		p.pos++
	}
	return item, nil
}

func (p *parser) parseFrom() ([]tableRef, error) {
	var refs []tableRef
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	refs = append(refs, ref)
	for {
		switch {
		case p.accept(tokOp, ","):
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.acceptKeyword("INNER") || p.at(tokIdent, "JOIN") || p.at(tokIdent, "CROSS"):
			cross := p.acceptKeyword("CROSS")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if !cross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				r.On = on
			}
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) parseTableRef() (tableRef, error) {
	var ref tableRef
	if p.accept(tokOp, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return ref, err
		}
		ref.Sub = sub
	} else {
		name, err := p.parseIdent("table name")
		if err != nil {
			return ref, err
		}
		ref.Name = name
	}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent("table alias")
		if err != nil {
			return ref, err
		}
		ref.Alias = strings.ToLower(alias)
	} else if p.cur().kind == tokIdent && !reservedWords[strings.ToUpper(p.cur().text)] {
		ref.Alias = strings.ToLower(p.cur().text)
		p.pos++
	}
	if ref.Sub != nil && ref.Alias == "" {
		return ref, p.errorf("derived table requires an alias")
	}
	return ref, nil
}

func (p *parser) parseIdent(what string) (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected %s, found %q", what, t.text)
	}
	if reservedWords[strings.ToUpper(t.text)] {
		return "", p.errorf("expected %s, found reserved word %q", what, t.text)
	}
	p.pos++
	return t.text, nil
}

// ---- expression parsing, by descending precedence ----

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "=") || p.at(tokOp, "<>") || p.at(tokOp, "!=") ||
			p.at(tokOp, "<") || p.at(tokOp, "<=") || p.at(tokOp, ">") || p.at(tokOp, ">="):
			op := p.cur().text
			p.pos++
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &binaryExpr{Op: op, L: l, R: r}
		case p.at(tokIdent, "IS"):
			p.pos++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &isNullExpr{X: l, Not: not}
		case p.at(tokIdent, "BETWEEN"):
			p.pos++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &binaryExpr{Op: "AND",
				L: &binaryExpr{Op: ">=", L: l, R: lo},
				R: &binaryExpr{Op: "<=", L: l, R: hi}}
		case p.at(tokIdent, "LIKE"):
			p.pos++
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &funcCall{Name: "SQL_LIKE", Args: []expr{l, pat}}
		case p.at(tokIdent, "NOT") || p.at(tokIdent, "IN"):
			not := p.acceptKeyword("NOT")
			if p.at(tokIdent, "LIKE") {
				p.pos++
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &unaryExpr{Op: "NOT", X: &funcCall{Name: "SQL_LIKE", Args: []expr{l, pat}}}
				continue
			}
			if p.at(tokIdent, "BETWEEN") {
				p.pos++
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &unaryExpr{Op: "NOT", X: &binaryExpr{Op: "AND",
					L: &binaryExpr{Op: ">=", L: l, R: lo},
					R: &binaryExpr{Op: "<=", L: l, R: hi}}}
				continue
			}
			if err := p.expectKeyword("IN"); err != nil {
				return nil, err
			}
			if err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			ie := &inExpr{X: l, Not: not}
			if p.at(tokIdent, "SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				ie.Sub = sub
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					ie.List = append(ie.List, e)
					if p.accept(tokOp, ",") {
						continue
					}
					break
				}
			}
			if err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			l = ie
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.cur().text
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.cur().text
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: "-", X: x}, nil
	}
	p.accept(tokOp, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &literal{Val: Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &literal{Val: Float(f)}, nil
		}
		return &literal{Val: Int(i)}, nil
	case tokString:
		p.pos++
		return &literal{Val: String(t.text)}, nil
	case tokParam:
		p.pos++
		if p.nparam >= len(p.params) {
			return nil, p.errorf("placeholder %d has no bound argument", p.nparam+1)
		}
		v := p.params[p.nparam]
		p.nparam++
		return &literal{Val: v}, nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %q in expression", t.text)
	case tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "NULL":
			p.pos++
			return &literal{Val: Null()}, nil
		case "TRUE":
			p.pos++
			return &literal{Val: Int(1)}, nil
		case "FALSE":
			p.pos++
			return &literal{Val: Int(0)}, nil
		case "CASE":
			return p.parseCase()
		}
		// Function call?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "(" {
			return p.parseFuncCall()
		}
		if reservedWords[upper] {
			return nil, p.errorf("unexpected keyword %q in expression", t.text)
		}
		// Column reference, possibly qualified.
		p.pos++
		name := strings.ToLower(t.text)
		if p.accept(tokOp, ".") {
			colTok := p.cur()
			if colTok.kind != tokIdent {
				return nil, p.errorf("expected column name after %q.", t.text)
			}
			p.pos++
			return &colRef{Table: name, Name: strings.ToLower(colTok.text)}, nil
		}
		return &colRef{Name: name}, nil
	default:
		return nil, p.errorf("unexpected token %q", t.text)
	}
}

func (p *parser) parseCase() (expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &caseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, whenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseFuncCall() (expr, error) {
	name := strings.ToUpper(p.cur().text)
	p.pos++ // function name
	p.pos++ // '('
	fc := &funcCall{Name: name}
	if p.accept(tokOp, "*") {
		fc.Star = true
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(tokOp, ")") {
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}
