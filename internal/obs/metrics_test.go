package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramZeroObservations: an unobserved histogram reports all-zero
// stats and quantiles, and exposes a bare +Inf bucket.
func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.SumUS != 0 || s.AvgUS != 0 || s.P50US != 0 || s.P99US != 0 {
		t.Fatalf("zero-observation snapshot not all-zero: %+v", s)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("zero-observation quantile = %d, want 0", q)
	}
	r := NewRegistry()
	r.RegisterHistogram("h_us", "help", h)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`h_us_bucket{le="+Inf"} 0`, "h_us_sum 0", "h_us_count 0"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestBucketSemantics pins the floor(log2)+1 bucketing and its boundary
// consistency: every value in bucket i is strictly below BucketBound(i).
func TestBucketSemantics(t *testing.T) {
	cases := []struct {
		us     uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := BucketOf(c.us); got != c.bucket {
			t.Errorf("BucketOf(%d) = %d, want %d", c.us, got, c.bucket)
		}
		if c.us >= BucketBound(c.bucket) && c.us != 0 {
			t.Errorf("value %d not below its bucket bound %d", c.us, BucketBound(c.bucket))
		}
	}
}

// TestQuantileMonotonicity: quantile estimates never decrease in q, and
// every estimate is an upper bound for its bucket.
func TestQuantileMonotonicity(t *testing.T) {
	h := NewHistogram()
	for us := uint64(1); us < 10000; us = us*3 + 1 {
		for i := 0; i < int(us%7)+1; i++ {
			h.ObserveUS(us)
		}
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile(%.2f) = %d < quantile at lower q = %d", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race) and checks conservation: the bucket sum
// equals the observation count.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveUS(seed*131 + uint64(i)%977)
			}
		}(uint64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var inBuckets uint64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
	if s.P50US > s.P90US || s.P90US > s.P99US {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

// TestPrometheusExpositionGolden pins the exact exposition output,
// including HELP/label escaping, family ordering, and the histogram
// triplet.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("approx_select_total", "selections served")
	c.Add(3)
	r.Counter("approx_requests_total", `escaped "help" with \slash`+"\nand newline",
		Label{Key: "endpoint", Value: `se"lect\x` + "\n"}).Add(7)
	g := r.Gauge("approx_cache_entries", "entries")
	g.Set(12.5)
	h := r.Histogram("approx_wal_fsync_us", "fsync latency")
	h.ObserveUS(0)
	h.ObserveUS(3)
	h.ObserveUS(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP approx_select_total selections served
# TYPE approx_select_total counter
approx_select_total 3
# HELP approx_requests_total escaped "help" with \\slash\nand newline
# TYPE approx_requests_total counter
approx_requests_total{endpoint="se\"lect\\x\n"} 7
# HELP approx_cache_entries entries
# TYPE approx_cache_entries gauge
approx_cache_entries 12.5
# HELP approx_wal_fsync_us fsync latency
# TYPE approx_wal_fsync_us histogram
approx_wal_fsync_us_bucket{le="1"} 1
approx_wal_fsync_us_bucket{le="2"} 1
approx_wal_fsync_us_bucket{le="4"} 2
approx_wal_fsync_us_bucket{le="8"} 3
approx_wal_fsync_us_bucket{le="+Inf"} 3
approx_wal_fsync_us_sum 8
approx_wal_fsync_us_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryCreateOrGet: same (name, labels) returns the same instance;
// kind conflicts panic.
func TestRegistryCreateOrGet(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", Label{Key: "k", Value: "v"})
	b := r.Counter("c_total", "h", Label{Key: "k", Value: "v"})
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	other := r.Counter("c_total", "h", Label{Key: "k", Value: "w"})
	if a == other {
		t.Fatal("distinct label sets shared one counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("c_total", "h")
}

// TestRegistryConcurrent registers and writes concurrently under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total", "h", Label{Key: "w", Value: string(rune('a' + w%3))}).Inc()
				r.Histogram("lat_us", "h").Observe(time.Duration(i) * time.Microsecond)
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sum := uint64(0)
	for _, v := range []string{"a", "b", "c"} {
		sum += r.Counter("shared_total", "h", Label{Key: "w", Value: v}).Value()
	}
	if sum != 1200 {
		t.Fatalf("counter sum %d, want 1200", sum)
	}
}
