package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// withSampling runs f with the global sampling rate set, restoring the
// previous rate after.
func withSampling(t *testing.T, n int, f func()) {
	t.Helper()
	prev := TraceSampling()
	SetTraceSampling(n)
	defer SetTraceSampling(prev)
	f()
}

// TestDisabledPathNoAllocs proves the cost contract: with tracing
// disabled, StartTrace and StartSpan allocate nothing and return nil
// spans, and nil-span methods are no-ops.
func TestDisabledPathNoAllocs(t *testing.T) {
	withSampling(t, 0, func() {
		ctx := context.Background()
		allocs := testing.AllocsPerRun(100, func() {
			c, sp := StartTrace(ctx, "select", "")
			if sp != nil || c != ctx {
				t.Fatal("disabled StartTrace must return (ctx, nil)")
			}
			c2, sp2 := StartSpan(ctx, "stage")
			if sp2 != nil || c2 != ctx {
				t.Fatal("disabled StartSpan must return (ctx, nil)")
			}
			sp2.SetAttr("k", "v")
			sp2.End()
		})
		if allocs != 0 {
			t.Fatalf("disabled tracing path allocates %v objects/op, want 0", allocs)
		}
	})
}

// TestSpanTree builds a nested trace across goroutines and checks the
// snapshot's structure, durations and attributes.
func TestSpanTree(t *testing.T) {
	withSampling(t, 1, func() {
		ctx, root := StartTrace(context.Background(), "select", "req-1")
		if root == nil {
			t.Fatal("sampling=1 must trace every request")
		}
		ctx2, admit := StartSpan(ctx, "admit")
		admit.End()
		_ = ctx2
		fanCtx, fan := StartSpan(ctx, "fanout")
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, sp := StartSpan(fanCtx, "shard.select")
				sp.SetAttr("shard", string(rune('0'+i)))
				time.Sleep(time.Millisecond)
				sp.End()
			}(i)
		}
		wg.Wait()
		fan.End()
		d := root.Trace().Finish()
		if d <= 0 {
			t.Fatalf("trace duration %v", d)
		}
		ts := root.Trace().Snapshot()
		if ts.ID != "req-1" || ts.Name != "select" {
			t.Fatalf("trace identity: %+v", ts)
		}
		if len(ts.Spans.Children) != 2 {
			t.Fatalf("root has %d children, want 2", len(ts.Spans.Children))
		}
		fanSnap := ts.Spans.Children[1]
		if fanSnap.Name != "fanout" || len(fanSnap.Children) != 3 {
			t.Fatalf("fanout snapshot: %+v", fanSnap)
		}
		for _, c := range fanSnap.Children {
			if c.Name != "shard.select" || c.DurUS < 500 {
				t.Fatalf("shard span: %+v", c)
			}
			if len(c.Attrs) != 1 || c.Attrs[0].Key != "shard" {
				t.Fatalf("shard attrs: %+v", c.Attrs)
			}
		}
	})
}

// TestSampling1InN: with rate N, roughly 1/N of roots are traced —
// exactly floor(k/N) over k sequential calls given the modulo counter.
func TestSampling1InN(t *testing.T) {
	withSampling(t, 4, func() {
		traced := 0
		for i := 0; i < 40; i++ {
			_, sp := StartTrace(context.Background(), "r", "")
			if sp != nil {
				traced++
				sp.Trace().Finish()
			}
		}
		if traced != 10 {
			t.Fatalf("traced %d of 40 at 1-in-4, want 10", traced)
		}
	})
}

// TestStageAggregates: ended spans and explicit RecordStage calls fold
// into the process-wide per-stage totals.
func TestStageAggregates(t *testing.T) {
	withSampling(t, 1, func() {
		ResetStageAggregates()
		ctx, root := StartTrace(context.Background(), "req", "")
		_, sp := StartSpan(ctx, "stage.x")
		time.Sleep(2 * time.Millisecond)
		sp.End()
		root.Trace().Finish()
		RecordStage("engine.merge", 3*time.Millisecond)
		RecordStage("engine.merge", 5*time.Millisecond)
		agg := StageAggregates()
		if a := agg["stage.x"]; a.Count != 1 || a.TotalUS < 1000 {
			t.Fatalf("stage.x aggregate: %+v", a)
		}
		if a := agg["engine.merge"]; a.Count != 2 || a.TotalUS < 7000 || a.AvgUS < 3000 {
			t.Fatalf("engine.merge aggregate: %+v", a)
		}
		ResetStageAggregates()
		if len(StageAggregates()) != 0 {
			t.Fatal("reset left aggregates behind")
		}
	})
}

// TestSlowLogTopN: the log retains exactly the top-N by duration and
// snapshots slowest-first.
func TestSlowLogTopN(t *testing.T) {
	sl := NewSlowLog(3)
	for _, d := range []int64{50, 10, 90, 30, 70, 20} {
		sl.Offer(TraceSnapshot{ID: "t", DurUS: d})
	}
	if sl.Len() != 3 {
		t.Fatalf("len %d, want 3", sl.Len())
	}
	snap := sl.Snapshot()
	want := []int64{90, 70, 50}
	for i, d := range want {
		if snap[i].DurUS != d {
			t.Fatalf("slowlog order: got %v at %d, want %v", snap[i].DurUS, i, d)
		}
	}
}

// TestSlowLogConcurrent offers from many goroutines under -race.
func TestSlowLogConcurrent(t *testing.T) {
	sl := NewSlowLog(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sl.Offer(TraceSnapshot{DurUS: int64(w*1000 + i)})
			}
		}(w)
	}
	wg.Wait()
	snap := sl.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("len %d, want 8", len(snap))
	}
	if snap[0].DurUS != 7499 {
		t.Fatalf("slowest retained %d, want 7499", snap[0].DurUS)
	}
}
