package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the span tracer: per-request trace contexts
// threaded through context.Context, sampled 1-in-N at the request root,
// with a top-N-by-latency slow-query log holding full span trees and
// process-wide per-stage duration aggregates folded in as spans end.
//
// The disabled path is the contract that lets spans sit on the selection
// hot path: when sampling is off (SetTraceSampling(0), the process
// default) — or the enclosing request was not sampled — StartSpan is one
// atomic load (plus, for non-root spans, one allocation-free context
// lookup) and returns a nil *Span whose every method is a no-op.

// sampleEvery is the global sampling knob: 0 disables tracing entirely;
// N >= 1 traces one in every N root requests.
var sampleEvery atomic.Int64

// rootSeq counts StartTrace calls for the sampling decision; sampledCount
// counts traces actually begun.
var (
	rootSeq      atomic.Uint64
	sampledCount atomic.Uint64
)

// SetTraceSampling sets the global sampling rate: 0 disables tracing,
// n >= 1 samples one in every n requests (1 = trace everything). The knob
// is process-wide, like the engine's pruning counters.
func SetTraceSampling(n int) {
	if n < 0 {
		n = 0
	}
	sampleEvery.Store(int64(n))
}

// TraceSampling returns the current sampling rate.
func TraceSampling() int { return int(sampleEvery.Load()) }

// TracingEnabled reports whether any sampling is active — the one-atomic-
// load guard for instrumentation that must cost nothing when off.
func TracingEnabled() bool { return sampleEvery.Load() != 0 }

// TracesSampled returns the number of traces begun since process start.
func TracesSampled() uint64 { return sampledCount.Load() }

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace is one sampled request's span tree. It is created by StartTrace
// and finished by Finish; child spans attach through StartSpan.
type Trace struct {
	id    string
	name  string
	begin time.Time

	mu   sync.Mutex
	root *Span
	dur  time.Duration // set by Finish
}

// Span is one timed stage of a trace. A nil *Span is the untraced case:
// every method is a nil-safe no-op, so call sites never branch.
type Span struct {
	tr       *Trace
	name     string
	start    time.Duration // offset from trace begin
	dur      time.Duration
	attrs    []Attr
	children []*Span
	ended    bool
}

type ctxKey struct{}

// idSeq and idBase build process-unique request/trace IDs without any
// dependency: the process epoch disambiguates across restarts, the
// sequence within one.
var (
	idSeq  atomic.Uint64
	idBase = uint64(time.Now().UnixNano())
)

// NewRequestID returns a process-unique request identifier, used for both
// trace IDs and the access log's request IDs (every request gets one,
// sampled or not).
func NewRequestID() string {
	return fmt.Sprintf("%08x-%06x", uint32(idBase), idSeq.Add(1))
}

// StartTrace begins a trace for a request root if it is sampled, returning
// the derived context and the root span. When tracing is disabled or the
// request is not sampled it returns (ctx, nil) after one atomic load.
// id may be empty, in which case a fresh request ID is assigned.
func StartTrace(ctx context.Context, name, id string) (context.Context, *Span) {
	n := sampleEvery.Load()
	if n == 0 {
		return ctx, nil
	}
	if n > 1 && rootSeq.Add(1)%uint64(n) != 0 {
		return ctx, nil
	}
	sampledCount.Add(1)
	if id == "" {
		id = NewRequestID()
	}
	tr := &Trace{id: id, name: name, begin: time.Now()}
	sp := &Span{tr: tr, name: name}
	tr.root = sp
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// StartSpan begins a child of the context's current span. Untraced
// contexts (tracing disabled, request not sampled, or no enclosing trace)
// return (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if sampleEvery.Load() == 0 {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	tr := parent.tr
	sp := &Span{tr: tr, name: name, start: time.Since(tr.begin)}
	tr.mu.Lock()
	parent.children = append(parent.children, sp)
	tr.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// FromContext returns the context's current span (nil when untraced).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// SetAttr annotates the span; nil-safe.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	sp.tr.mu.Unlock()
}

// End closes the span, recording its duration and folding it into the
// process-wide stage aggregates; nil-safe and idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	tr := sp.tr
	tr.mu.Lock()
	if sp.ended {
		tr.mu.Unlock()
		return
	}
	sp.ended = true
	sp.dur = time.Since(tr.begin) - sp.start
	tr.mu.Unlock()
	RecordStage(sp.name, sp.dur)
}

// Trace returns the owning trace (nil for a nil span).
func (sp *Span) Trace() *Trace {
	if sp == nil {
		return nil
	}
	return sp.tr
}

// ID returns the trace's identifier.
func (tr *Trace) ID() string { return tr.id }

// Finish ends the root span and returns the trace's total duration.
func (tr *Trace) Finish() time.Duration {
	tr.root.End()
	tr.mu.Lock()
	tr.dur = tr.root.dur
	d := tr.dur
	tr.mu.Unlock()
	return d
}

// SpanSnapshot is the JSON form of one span in a slow-query entry.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    []Attr         `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is the JSON form of one retained trace: identity, total
// latency, and the full span tree.
type TraceSnapshot struct {
	ID    string       `json:"id"`
	Name  string       `json:"name"`
	Time  time.Time    `json:"time"`
	DurUS int64        `json:"dur_us"`
	Spans SpanSnapshot `json:"spans"`
}

// Snapshot renders the trace's span tree. Unended spans report the
// duration observed so far.
func (tr *Trace) Snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceSnapshot{
		ID:    tr.id,
		Name:  tr.name,
		Time:  tr.begin,
		DurUS: tr.dur.Microseconds(),
		Spans: snapshotSpan(tr.root, tr.begin),
	}
}

func snapshotSpan(sp *Span, begin time.Time) SpanSnapshot {
	d := sp.dur
	if !sp.ended {
		d = time.Since(begin) - sp.start
	}
	out := SpanSnapshot{
		Name:    sp.name,
		StartUS: sp.start.Microseconds(),
		DurUS:   d.Microseconds(),
		Attrs:   sp.attrs,
	}
	for _, c := range sp.children {
		out.Children = append(out.Children, snapshotSpan(c, begin))
	}
	return out
}

// ---- per-stage aggregates ----

// stageAgg accumulates per-stage totals process-wide; folded from every
// ended span and from explicitly recorded engine stages. Cardinality is
// bounded by the set of literal stage names in the code.
var stageAgg struct {
	mu sync.Mutex
	m  map[string]*stageCell
}

type stageCell struct {
	count atomic.Uint64
	ns    atomic.Int64
}

// RecordStage folds one stage duration into the process-wide aggregates —
// the hook for call sites that time a stage without materializing a span
// (the engine's merge/materialize phases). Call only when TracingEnabled.
func RecordStage(name string, d time.Duration) {
	stageAgg.mu.Lock()
	if stageAgg.m == nil {
		stageAgg.m = make(map[string]*stageCell)
	}
	c, ok := stageAgg.m[name]
	if !ok {
		c = &stageCell{}
		stageAgg.m[name] = c
	}
	stageAgg.mu.Unlock()
	c.count.Add(1)
	c.ns.Add(int64(d))
}

// StageAgg is one stage's aggregate: how often it ran and the total and
// mean wall time spent in it.
type StageAgg struct {
	Count   uint64 `json:"count"`
	TotalUS int64  `json:"total_us"`
	AvgUS   int64  `json:"avg_us"`
}

// StageAggregates snapshots the per-stage aggregates.
func StageAggregates() map[string]StageAgg {
	stageAgg.mu.Lock()
	defer stageAgg.mu.Unlock()
	out := make(map[string]StageAgg, len(stageAgg.m))
	for name, c := range stageAgg.m {
		n := c.count.Load()
		ns := c.ns.Load()
		a := StageAgg{Count: n, TotalUS: ns / 1000}
		if n > 0 {
			a.AvgUS = ns / int64(n) / 1000
		}
		out[name] = a
	}
	return out
}

// ResetStageAggregates zeroes the aggregates (benchmark harness hook).
func ResetStageAggregates() {
	stageAgg.mu.Lock()
	stageAgg.m = nil
	stageAgg.mu.Unlock()
}

// ---- slow-query log ----

// SlowLog retains the top-N slowest finished traces by total latency — a
// bounded ring the server exposes at /v1/slowlog. Offer is O(N) on the
// slow path only (a trace slower than the current minimum).
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []TraceSnapshot
}

// NewSlowLog returns a slow log retaining up to capacity traces
// (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{cap: capacity}
}

// Offer retains the trace if it ranks among the slowest seen.
func (sl *SlowLog) Offer(ts TraceSnapshot) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if len(sl.entries) < sl.cap {
		sl.entries = append(sl.entries, ts)
		return
	}
	min := 0
	for i := 1; i < len(sl.entries); i++ {
		if sl.entries[i].DurUS < sl.entries[min].DurUS {
			min = i
		}
	}
	if ts.DurUS > sl.entries[min].DurUS {
		sl.entries[min] = ts
	}
}

// Len reports the number of retained traces.
func (sl *SlowLog) Len() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.entries)
}

// Snapshot returns the retained traces, slowest first.
func (sl *SlowLog) Snapshot() []TraceSnapshot {
	sl.mu.Lock()
	out := make([]TraceSnapshot, len(sl.entries))
	copy(out, sl.entries)
	sl.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurUS > out[j-1].DurUS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
