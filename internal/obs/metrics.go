// Package obs is the zero-dependency telemetry substrate of the serving
// stack: a metrics registry with Prometheus text exposition (counters,
// gauges, log2-bucketed latency histograms), a sampled low-overhead span
// tracer with a top-N slow-query log, and process-wide per-stage latency
// aggregates. Every subsystem (server, sharded fan-out, hot-path engine,
// cache, store, watch, cluster) reports through it, so one /metrics scrape
// and one slow-query span tree answer "where did that request spend its
// time".
//
// Cost contract: with tracing disabled (the process default), every
// tracing entry point is a single atomic load and performs no allocations
// — cheap enough for the selection hot path, as asserted by the engine's
// allocation test. Metric observation is always-on and lock-free (two to
// three atomic adds).
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---- scalar metrics ----

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// NewCounter returns a standalone counter; register it with
// Registry.RegisterCounter to expose it.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// numBuckets is the histogram's bucket count: bucket indexes are
// floor(log2(µs))+1, so 32 buckets cover every latency below ~35 minutes.
const numBuckets = 32

// Histogram is a lock-free log2-bucketed latency histogram: bucket i
// counts observations v (in µs) with floor(log2(v))+1 == i, i.e.
// v ∈ [2^(i-1), 2^i); bucket 0 counts v == 0. Quantile estimates are
// accurate to a factor of two — plenty for spotting regressions — while
// observation is two atomic adds on the hot path.
type Histogram struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram returns a standalone histogram; register it with
// Registry.RegisterHistogram to expose it.
func NewHistogram() *Histogram { return &Histogram{} }

// BucketOf returns the bucket index of a µs observation: 0 for v == 0,
// otherwise bits.Len64(v) — which is floor(log2(v))+1, so bucket i spans
// [2^(i-1), 2^i).
func BucketOf(us uint64) int {
	if us == 0 {
		return 0
	}
	b := bits.Len64(us)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound (µs) of bucket i — the
// value Quantile reports when the target observation lands in bucket i.
// Consistent with BucketOf: every v in bucket i satisfies v < 2^i (i > 0);
// bucket 0 holds only v == 0, bounded by 1.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 1
	}
	return uint64(1) << i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveUS(uint64(d.Microseconds())) }

// ObserveUS records one µs observation.
func (h *Histogram) ObserveUS(us uint64) {
	h.count.Add(1)
	h.sumUS.Add(us)
	h.buckets[BucketOf(us)].Add(1)
}

// Quantile returns an upper bound (the bucket's exclusive upper boundary)
// for the q-quantile observation in microseconds.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			return BucketBound(i)
		}
	}
	return BucketBound(numBuckets - 1)
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64
	SumUS uint64
	AvgUS uint64
	P50US uint64
	P90US uint64
	P99US uint64
}

// Snapshot summarizes the histogram. A histogram with zero observations
// reports all-zero quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	n := h.count.Load()
	s := HistogramSnapshot{Count: n, SumUS: h.sumUS.Load()}
	if n > 0 {
		s.AvgUS = s.SumUS / n
		s.P50US = h.Quantile(0.50)
		s.P90US = h.Quantile(0.90)
		s.P99US = h.Quantile(0.99)
	}
	return s
}

// ---- registry ----

// Label is one name=value pair attached to a metric child.
type Label struct{ Key, Value string }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one registered (metric, label set) series.
type child struct {
	labels string // rendered {k="v",...}, "" for none
	metric any    // *Counter / *Gauge / *Histogram; nil for func metrics
	write  func(w io.Writer, name, labels string)
}

// family groups every child of one metric name.
type family struct {
	name, help string
	kind       metricKind
	children   []*child
	byLabels   map[string]*child
}

// Registry holds named metrics and writes them in Prometheus text
// exposition format. Registration methods are create-or-get: registering
// the same (name, labels) twice returns the same instance, and registering
// one name with two kinds panics (a programming error, like a duplicate
// flag).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	// order preserves registration order of families for stable exposition.
	order []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels serializes a label set as {k="v",...} with Prometheus label
// value escaping; labels are emitted in the given order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// register resolves the family and child slot for (name, labels), creating
// them as needed; build is called to construct the child only on first
// registration.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, build func() *child) *child {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]*child)}
		r.fams[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := renderLabels(labels)
	if c, ok := f.byLabels[key]; ok {
		return c
	}
	c := build()
	c.labels = key
	f.byLabels[key] = c
	f.children = append(f.children, c)
	return c
}

// Counter registers (or returns the existing) counter under name with the
// given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.RegisterCounter(name, help, NewCounter(), labels...)
}

// RegisterCounter exposes an existing counter instance (e.g. a package
// level subsystem counter) under name. If the (name, labels) series is
// already registered, the registered instance wins and is returned.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) *Counter {
	ch := r.register(name, help, kindCounter, labels, func() *child {
		return &child{metric: c, write: func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %d\n", n, l, c.Value())
		}}
	})
	return ch.metric.(*Counter)
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	ch := r.register(name, help, kindGauge, labels, func() *child {
		return &child{metric: g, write: func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(g.Value()))
		}}
	})
	return ch.metric.(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time — the bridge for counters owned elsewhere (hot-path pruning stats,
// replication lag, cache occupancy).
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() *child {
		return &child{write: func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(f()))
		}}
	})
}

// CounterFunc registers a counter whose value is read from f at exposition
// time.
func (r *Registry) CounterFunc(name, help string, f func() uint64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() *child {
		return &child{write: func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %d\n", n, l, f())
		}}
	})
}

// Histogram registers (or returns the existing) histogram under name.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.RegisterHistogram(name, help, NewHistogram(), labels...)
}

// RegisterHistogram exposes an existing histogram instance under name. If
// the (name, labels) series is already registered, the registered instance
// wins and is returned.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) *Histogram {
	ch := r.register(name, help, kindHistogram, labels, func() *child {
		return &child{metric: h, write: func(w io.Writer, n, l string) {
			writeHistogram(w, n, l, h)
		}}
	})
	return ch.metric.(*Histogram)
}

// writeHistogram emits the cumulative _bucket/_sum/_count triplet of one
// histogram series. Buckets are emitted up to the highest non-empty one
// (plus +Inf), keeping the exposition compact.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	// Load a consistent-enough view: counts first, then per-bucket.
	total := h.count.Load()
	var counts [numBuckets]uint64
	top := 0
	for i := 0; i < numBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	// Merge the le label into an existing label set.
	le := func(bound string) string {
		if labels == "" {
			return `{le="` + bound + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + bound + `"}`
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(fmt.Sprintf("%d", BucketBound(i))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, le("+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.sumUS.Load())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; children within a family are sorted by label set for a stable
// scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	// Snapshot children under the lock; the writes themselves only read
	// atomics (or call gauge funcs, which must not re-enter the registry).
	type famSnap struct {
		name, help string
		kind       metricKind
		children   []*child
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		cs := make([]*child, len(f.children))
		copy(cs, f.children)
		sort.Slice(cs, func(a, b int) bool { return cs[a].labels < cs[b].labels })
		snaps[i] = famSnap{name: f.name, help: f.help, kind: f.kind, children: cs}
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.children {
			c.write(w, f.name, c.labels)
		}
	}
	return nil
}

// formatFloat renders a float without exponent noise for integral values.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
