package native

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dirty"
)

// hotPathCorpus builds a dirty DBLP-like relation and an all-layers corpus,
// the workload shape of the benchmark's performance experiments.
func hotPathCorpus(t testing.TB, size int, seed int64) (*core.Corpus, []core.Record, core.Config) {
	t.Helper()
	clean := datasets.DBLPTitles(maxInt(size/10, 10), seed)
	ds, err := dirty.Generate(clean, nil, dirty.Params{
		Size: size, NumClean: maxInt(size/10, 10), Dist: dirty.Uniform,
		ErroneousPct: 0.70, ErrorExtent: 0.20, TokenSwapPct: 0.20,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	c, err := core.NewCorpus(ds.Records, cfg, core.AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	return c, ds.Records, cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// hotPathQueries mixes dirty record texts with a query containing unknown
// tokens and a short one.
func hotPathQueries(records []core.Record) []string {
	qs := []string{
		records[1].Text,
		records[len(records)/2].Text,
		records[len(records)-1].Text + " zq",
		"zzzz qqqq xylophone",
		"of",
	}
	return qs
}

// thresholdFor picks a threshold that splits a predicate's full ranking
// roughly in half, so threshold push-down is exercised meaningfully.
func thresholdFor(t *testing.T, p core.Predicate, query string) (float64, bool) {
	t.Helper()
	full, err := NaiveSelect(p, query, core.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		return 0, false
	}
	return full[len(full)/2].Score, true
}

func assertIdentical(t *testing.T, label string, want, got []core.Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches != %d\nwant %v\ngot  %v", label, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].TID != got[i].TID || want[i].Score != got[i].Score {
			t.Fatalf("%s: position %d: want %+v, got %+v", label, i, want[i], got[i])
		}
	}
}

// diffOne runs the optimized hot path against the naive reference for one
// predicate and query across the full option matrix, demanding bit-identical
// scores and tie order.
func diffOne(t *testing.T, p core.Predicate, query string) {
	t.Helper()
	ctx := context.Background()
	cp := p.(core.ContextPredicate)
	optsList := []core.SelectOptions{
		{},
		{Limit: 1},
		{Limit: 10},
	}
	if th, ok := thresholdFor(t, p, query); ok {
		optsList = append(optsList,
			core.SelectOptions{Threshold: th, HasThreshold: true},
			core.SelectOptions{Limit: 10, Threshold: th, HasThreshold: true},
		)
	}
	for _, opts := range optsList {
		want, err := NaiveSelect(p, query, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cp.SelectCtx(ctx, query, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, fmt.Sprintf("%s opts=%+v query=%q", p.Name(), opts, query), want, got)
	}
}

// TestHotPathDifferential proves the optimized score-at-a-time path exact:
// for all 13 predicates and every option shape the ranked results are
// bit-identical to the naive reference merge — before and after an
// Insert/Delete epoch, so the snapshot bound columns are shown to stay in
// sync with mutations.
func TestHotPathDifferential(t *testing.T) {
	c, records, cfg := hotPathCorpus(t, 160, 3)
	queries := hotPathQueries(records)
	for _, name := range core.PredicateNames {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Attach(name, c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				diffOne(t, p, q)
			}
		})
	}

	// Mutate: delete a slice of records, insert fresh ones (new tokens
	// included), then re-attach and differential-test again. Every bound
	// column is rebuilt with the epoch's tables; a stale bound would show
	// up as a pruned-away record or a changed score.
	if err := c.Delete(records[3].TID, records[40].TID, records[77].TID); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(
		core.Record{TID: 900001, Text: "entirely novel xylophone quartet manuscripts"},
		core.Record{TID: 900002, Text: records[10].Text + " addendum"},
	); err != nil {
		t.Fatal(err)
	}
	queries = append(queries, "entirely novel xylophone quartet")
	for _, name := range core.PredicateNames {
		name := name
		t.Run(name+"/epoch2", func(t *testing.T) {
			p, err := Attach(name, c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				diffOne(t, p, q)
			}
		})
	}
}

// TestHotPathConcurrentScratch hammers predicates from concurrent
// goroutines sharing the global scratch pool (run under -race in CI):
// every goroutine must see results identical to the sequential baseline.
func TestHotPathConcurrentScratch(t *testing.T) {
	c, records, cfg := hotPathCorpus(t, 120, 5)
	queries := hotPathQueries(records)
	names := []string{"Cosine", "BM25", "LM", "Jaccard", "WeightedJaccard", "EditDistance", "GESJaccard"}
	opts := core.SelectOptions{Limit: 10}
	ctx := context.Background()

	type key struct {
		name  string
		query string
	}
	expected := map[key][]core.Match{}
	preds := map[string]core.ContextPredicate{}
	for _, name := range names {
		p, err := Attach(name, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		preds[name] = p.(core.ContextPredicate)
		for _, q := range queries {
			ms, err := preds[name].SelectCtx(ctx, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			expected[key{name, q}] = ms
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				name := names[(g+i)%len(names)]
				q := queries[(g*7+i)%len(queries)]
				ms, err := preds[name].SelectCtx(ctx, q, opts)
				if err != nil {
					errs <- err
					return
				}
				want := expected[key{name, q}]
				if len(ms) != len(want) {
					errs <- fmt.Errorf("%s: concurrent result diverged", name)
					return
				}
				for j := range ms {
					if ms[j] != want[j] {
						errs <- fmt.Errorf("%s: concurrent result diverged at %d", name, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSelectHotPathAllocs asserts the map-free steady state of the dense
// hot path: once the scratch pool is warm, a Limit=10 selection over the
// aggregate-weighted class performs only a small constant number of
// allocations (query tokenization, plan slice, k-sized result) — no
// O(candidates) accumulator maps.
func TestSelectHotPathAllocs(t *testing.T) {
	c, records, cfg := hotPathCorpus(t, 500, 9)
	query := records[7].Text
	opts := core.SelectOptions{Limit: 10}
	ctx := context.Background()
	for _, name := range []string{"Cosine", "BM25", "LM", "WeightedMatch", "IntersectSize"} {
		p, err := Attach(name, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cp := p.(core.ContextPredicate)
		// Warm the pool and the plan buffers.
		for i := 0; i < 3; i++ {
			if _, err := cp.SelectCtx(ctx, query, opts); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := cp.SelectCtx(ctx, query, opts); err != nil {
				t.Fatal(err)
			}
		})
		// The naive map path allocates hundreds of objects per query at
		// this size (accumulator map growth alone); the dense path budget
		// covers query-side tokenization plus the k-sized result.
		if allocs > 150 {
			t.Errorf("%s: %v allocs/op — accumulator maps are back on the hot path?", name, allocs)
		}
		naive := testing.AllocsPerRun(20, func() {
			if _, err := NaiveSelect(p, query, opts); err != nil {
				t.Fatal(err)
			}
		})
		if naive <= allocs {
			t.Logf("%s: naive %v allocs vs optimized %v (informational)", name, naive, allocs)
		}
	}
}

// BenchmarkSelectHotPath measures ns/op and allocs/op of the optimized
// path against the naive reference merge, one representative predicate per
// class, at Limit=10 — the BENCH_hotpath.json scenario in Go-bench form.
func BenchmarkSelectHotPath(b *testing.B) {
	c, records, cfg := hotPathCorpus(b, 2000, 11)
	queries := hotPathQueries(records)
	opts := core.SelectOptions{Limit: 10}
	ctx := context.Background()
	for _, name := range []string{"Cosine", "BM25", "LM", "IntersectSize", "Jaccard", "WeightedMatch", "EditDistance", "GESJaccard"} {
		p, err := Attach(name, c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cp := p.(core.ContextPredicate)
		b.Run(name+"/optimized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cp.SelectCtx(ctx, queries[i%len(queries)], opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NaiveSelect(p, queries[i%len(queries)], opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
