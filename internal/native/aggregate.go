package native

import (
	"repro/internal/core"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// The aggregate weighted predicates (§3.2, Appendix B.2) score
// sim(Q,D) = Σ_{t∈Q∩D} w_q(t,Q)·w_d(t,D) and differ only in the weighting
// scheme. Token frequency matters, so multisets are preserved.

// Cosine is the tf-idf cosine similarity predicate (§3.2.1). Its posting
// table is parameter-free, so it lives on the shared corpus
// (core.LayerTFIDF) and attaching costs nothing.
type Cosine struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewCosine preprocesses the base relation with normalized tf-idf weights.
func NewCosine(records []core.Record, cfg core.Config) (*Cosine, error) {
	p, err := Build("Cosine", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*Cosine), nil
}

func attachCosine(s *core.Snapshot, cfg core.Config) *Cosine {
	return &Cosine{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *Cosine) Name() string { return "Cosine" }

// plan assembles the query's posting-list terms — Σ w_q(t)·w_d(t) scoring
// with the shared TFIDFMax/TFIDFMin bound columns — in descending-impact
// order. Query weights are normalized tf-idf computed with the base
// relation's idf; tokens unknown to the base relation are dropped from the
// query vector, as in the declarative plan.
func (p *Cosine) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qw := p.g.Stats.TFIDF(tokenize.Counts(tokenize.QGrams(query, p.q)))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRankWeights(qw) {
		terms = append(terms, core.Term{
			Q:    qw[rt.Tok],
			W:    p.g.TFIDFPost[rt.Rank],
			MaxW: p.g.TFIDFMax[rt.Rank],
			MinW: p.g.TFIDFMin[rt.Rank],
		})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{}
}

// selectOpts ranks records by Σ w_q(t)·w_d(t) on the score-at-a-time path.
func (p *Cosine) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *Cosine) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}

// BM25 is the BM25 probabilistic weighting predicate (§3.2.2), deployed for
// data cleaning for the first time in the paper. Its record-side weights
// depend on the k1/b parameters, so they are computed at attach time from
// the shared corpus statistics.
type BM25 struct {
	phases
	recs       []core.Record
	g          *core.GramLayer
	postings   [][]core.WPost // indexed by token rank
	maxW, minW []float64      // per-rank posting weight bounds
	params     weights.BM25Params
	q          int
}

// NewBM25 preprocesses the base relation with BM25 record-side weights.
func NewBM25(records []core.Record, cfg core.Config) (*BM25, error) {
	p, err := Build("BM25", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*BM25), nil
}

func attachBM25(s *core.Snapshot, cfg core.Config) *BM25 {
	g := s.Grams
	p := &BM25{
		recs:     s.Records,
		g:        g,
		q:        cfg.Q,
		params:   weights.BM25Params{K1: cfg.BM25K1, K3: cfg.BM25K3, B: cfg.BM25B},
		postings: g.RankTable(),
	}
	// The RS factor of w_d (Eq. 3.4) is per token, not per posting:
	// computing it once per rank keeps the attach at two logs per distinct
	// token instead of two per (token, record) pair.
	rs := make([]float64, len(g.TokenByRank))
	for r, t := range g.TokenByRank {
		rs[r] = g.Stats.RS(t)
	}
	avgdl := g.Stats.AvgDL()
	for i, pairs := range g.Pairs {
		kd := p.params.K1 * ((1 - p.params.B) + p.params.B*float64(g.DL[i])/avgdl)
		for _, pr := range pairs {
			tf := float64(pr.TF)
			w := rs[pr.Rank] * (p.params.K1 + 1) * tf / (kd + tf)
			p.postings[pr.Rank] = append(p.postings[pr.Rank], core.WPost{Rec: i, W: w})
		}
	}
	// The per-rank weight bounds feeding max-score pruning; the attach
	// reruns on every corpus epoch, so bounds and postings move together.
	p.maxW, p.minW = core.PostingBounds(p.postings)
	return p
}

// Name implements core.Predicate.
func (p *BM25) Name() string { return "BM25" }

// plan assembles the Eq. 3.4 scoring terms in descending-impact order. The
// RS factor inside w_d can be negative for very common tokens, so the
// per-rank minima feed the engine's negative-suffix bound.
func (p *BM25) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRanks(qcounts) {
		terms = append(terms, core.Term{
			Q:    weights.BM25Query(qcounts[rt.Tok], p.params),
			W:    p.postings[rt.Rank],
			MaxW: p.maxW[rt.Rank],
			MinW: p.minW[rt.Rank],
		})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{}
}

// selectOpts ranks records by the BM25 score of Eq. 3.4.
func (p *BM25) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *BM25) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}
