package native

import (
	"time"

	"repro/internal/core"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// The aggregate weighted predicates (§3.2, Appendix B.2) score
// sim(Q,D) = Σ_{t∈Q∩D} w_q(t,Q)·w_d(t,D) and differ only in the weighting
// scheme. Token frequency matters, so multisets are preserved.

// wpost is one posting of a weighted inverted index: a record position and
// the record-side weight of the token in that record.
type wpost struct {
	idx int
	w   float64
}

// Cosine is the tf-idf cosine similarity predicate (§3.2.1).
type Cosine struct {
	phases
	td       *tokenData
	postings map[string][]wpost
	q        int
}

// NewCosine preprocesses the base relation with normalized tf-idf weights.
func NewCosine(records []core.Record, cfg core.Config) (*Cosine, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &Cosine{td: td, q: cfg.Q, postings: make(map[string][]wpost)}
	for i, counts := range td.counts {
		for t, w := range td.corpus.TFIDF(counts) {
			p.postings[t] = append(p.postings[t], wpost{idx: i, w: w})
		}
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *Cosine) Name() string { return "Cosine" }

// selectOpts ranks records by Σ w_q(t)·w_d(t). Query weights are normalized
// tf-idf computed with the base relation's idf; tokens unknown to the base
// relation are dropped from the query vector, as in the declarative plan.
func (p *Cosine) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qcounts := p.td.knownOnly(tokenize.Counts(tokenize.QGrams(query, p.q)))
	qw := p.td.corpus.TFIDF(qcounts)
	acc := accumulator{}
	for _, t := range sortedTokens(qw) {
		wq := qw[t]
		for _, post := range p.postings[t] {
			acc[post.idx] += wq * post.w
		}
	}
	return acc.matches(p.td, opts), nil
}

// BM25 is the BM25 probabilistic weighting predicate (§3.2.2), deployed for
// data cleaning for the first time in the paper.
type BM25 struct {
	phases
	td       *tokenData
	postings map[string][]wpost
	params   weights.BM25Params
	q        int
}

// NewBM25 preprocesses the base relation with BM25 record-side weights.
func NewBM25(records []core.Record, cfg core.Config) (*BM25, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &BM25{
		td:       td,
		q:        cfg.Q,
		params:   weights.BM25Params{K1: cfg.BM25K1, K3: cfg.BM25K3, B: cfg.BM25B},
		postings: make(map[string][]wpost),
	}
	for i, counts := range td.counts {
		for t, w := range td.corpus.BM25Doc(counts, td.dl[i], p.params) {
			p.postings[t] = append(p.postings[t], wpost{idx: i, w: w})
		}
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *BM25) Name() string { return "BM25" }

// selectOpts ranks records by the BM25 score of Eq. 3.4.
func (p *BM25) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	acc := accumulator{}
	for _, t := range sortedTokens(qcounts) {
		wq := weights.BM25Query(qcounts[t], p.params)
		for _, post := range p.postings[t] {
			acc[post.idx] += wq * post.w
		}
	}
	return acc.matches(p.td, opts), nil
}
