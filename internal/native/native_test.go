package native

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

// companyRecords mirrors the §5.4 discussion. The paper's abbreviation
// argument rests on "Incorporated and Inc are frequent words in the company
// names database", so the fixture includes enough filler companies with
// those suffixes (and filler Hotels/Labs for the token-swap argument) to
// make the corpus statistics match the premise.
var companyRecords = buildCompanyRecords()

func buildCompanyRecords() []core.Record {
	records := []core.Record{
		{TID: 1, Text: "AT&T Incorporated"},
		{TID: 2, Text: "AT&T Inc."},
		{TID: 3, Text: "IBM Incorporated"},
		{TID: 4, Text: "Morgan Stanley Group Inc."},
		{TID: 5, Text: "Stanley Morgan Group Inc."},
		{TID: 6, Text: "Silicon Valley Group, Inc."},
		{TID: 7, Text: "Beijing Hotel"},
		{TID: 8, Text: "Hotel Beijing"},
		{TID: 9, Text: "Beijing Labs"},
	}
	fillers := []string{
		"Quantum Widgets", "Global Freight", "Pacific Mills", "Northern Steel",
		"Redwood Energy", "Vertex Systems", "Orion Foods", "Cobalt Mining",
		"Juniper Textiles", "Falcon Airways", "Crescent Media", "Summit Tools",
	}
	tid := 10
	for i, f := range fillers {
		suffix := " Incorporated"
		if i%2 == 0 {
			suffix = " Inc."
		}
		records = append(records, core.Record{TID: tid, Text: f + suffix})
		tid++
	}
	for _, f := range []string{"Shanghai", "Berlin", "Lisbon", "Cairo"} {
		records = append(records, core.Record{TID: tid, Text: f + " Hotel"})
		tid++
		records = append(records, core.Record{TID: tid, Text: f + " Labs"})
		tid++
	}
	return records
}

func buildAll(t *testing.T, records []core.Record, cfg core.Config) map[string]core.Predicate {
	t.Helper()
	out := map[string]core.Predicate{}
	for _, name := range core.PredicateNames {
		p, err := Build(name, records, cfg)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		out[name] = p
	}
	return out
}

func rank(t *testing.T, p core.Predicate, query string) []int {
	t.Helper()
	ms, err := p.Select(query)
	if err != nil {
		t.Fatalf("%s.Select(%q): %v", p.Name(), query, err)
	}
	ids := make([]int, len(ms))
	for i, m := range ms {
		ids[i] = m.TID
	}
	return ids
}

func position(ids []int, tid int) int {
	for i, id := range ids {
		if id == tid {
			return i
		}
	}
	return -1
}

func TestBuildUnknownPredicate(t *testing.T) {
	if _, err := Build("NoSuch", companyRecords, core.DefaultConfig()); err == nil {
		t.Fatal("unknown predicate should error")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Q = 0
	if _, err := NewJaccard(companyRecords, cfg); err == nil {
		t.Fatal("q=0 should be rejected")
	}
	cfg = core.DefaultConfig()
	cfg.PruneRate = 1.0
	if _, err := NewJaccard(companyRecords, cfg); err == nil {
		t.Fatal("prune rate 1.0 should be rejected")
	}
	cfg = core.DefaultConfig()
	dup := []core.Record{{TID: 1, Text: "a"}, {TID: 1, Text: "b"}}
	if _, err := NewJaccard(dup, cfg); err == nil {
		t.Fatal("duplicate TIDs should be rejected")
	}
}

func TestSelfQueryRanksFirstEverywhere(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0 // rank all records
	preds := buildAll(t, companyRecords, cfg)
	for name, p := range preds {
		ids := rank(t, p, "Morgan Stanley Group Inc.")
		if len(ids) == 0 {
			t.Errorf("%s: no results for exact query", name)
			continue
		}
		if name == "WeightedJaccard" {
			// RS weights are negative for frequent tokens, so WeightedJaccard
			// can legitimately score a non-identical record above 1 (the
			// denominator shrinks below the intersection weight). The exact
			// match still scores exactly 1.
			ms, err := p.Select("Morgan Stanley Group Inc.")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, m := range ms {
				if m.TID == 4 && math.Abs(m.Score-1) < 1e-12 {
					found = true
				}
			}
			if !found {
				t.Errorf("WeightedJaccard: exact match should score 1, got %v", ms)
			}
			continue
		}
		if ids[0] != 4 {
			t.Errorf("%s: exact match ranked at %d, ranking %v", name, position(ids, 4), ids)
		}
	}
}

func TestExactMatchScores(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0
	// Predicates with a natural [0,1] scale must give an exact duplicate 1.0.
	for _, name := range []string{"Jaccard", "EditDistance", "GES"} {
		p, err := Build(name, companyRecords, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := p.Select("Beijing Hotel")
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 || ms[0].TID != 7 || math.Abs(ms[0].Score-1) > 1e-12 {
			t.Errorf("%s: exact duplicate score = %+v", name, ms[0])
		}
	}
}

// TestAbbreviationError reproduces the §5.4 abbreviation-error discussion:
// for query "AT&T Incorporated", unweighted overlap predicates prefer
// "IBM Incorporated" over "AT&T Inc.", while weighted predicates keep the
// AT&T record on top (after the exact match).
func TestAbbreviationError(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0
	preds := buildAll(t, companyRecords, cfg)
	q := "AT&T Incorporated"
	for _, name := range []string{"IntersectSize", "Jaccard", "EditDistance"} {
		ids := rank(t, preds[name], q)
		if !(position(ids, 3) < position(ids, 2)) {
			t.Errorf("%s should be fooled by the abbreviation, ranking %v", name, ids)
		}
	}
	// HMM is omitted here: its robustness to abbreviations is a statistical
	// property that only emerges at corpus scale (weight ≈ 1 + 4N/cf needs a
	// genuinely frequent suffix); experiment E4 checks it on the benchmark.
	for _, name := range []string{"WeightedMatch", "WeightedJaccard", "Cosine", "BM25", "LM"} {
		ids := rank(t, preds[name], q)
		pIBM, pATT := position(ids, 3), position(ids, 2)
		if pATT < 0 || (pIBM >= 0 && pIBM < pATT) {
			t.Errorf("%s should prefer AT&T Inc. over IBM Incorporated, ranking %v", name, ids)
		}
	}
}

// TestTokenSwapError reproduces the §5.4 token-swap discussion: for query
// "Beijing Hotel", q-gram predicates rank "Hotel Beijing" above
// "Beijing Labs", while GES (word order sensitive) does not reward the swap.
func TestTokenSwapError(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0
	preds := buildAll(t, companyRecords, cfg)
	q := "Beijing Hotel"
	for _, name := range []string{"IntersectSize", "Jaccard", "Cosine", "BM25", "HMM", "LM", "SoftTFIDF"} {
		ids := rank(t, preds[name], q)
		pSwap, pLabs := position(ids, 8), position(ids, 9)
		if pSwap < 0 || (pLabs >= 0 && pLabs < pSwap) {
			t.Errorf("%s should rank the swapped tuple above Beijing Labs, ranking %v", name, ids)
		}
	}
	// GES pays full word-order cost: swapped tuple scores strictly below
	// what the q-gram predicates would indicate.
	gms, _ := preds["GES"].Select(q)
	var swapScore, labsScore float64
	for _, m := range gms {
		if m.TID == 8 {
			swapScore = m.Score
		}
		if m.TID == 9 {
			labsScore = m.Score
		}
	}
	if swapScore > 0.99 {
		t.Errorf("GES should not treat a token swap as free: swap=%v labs=%v", swapScore, labsScore)
	}
}

func TestIntersectSizeCounts(t *testing.T) {
	records := []core.Record{{TID: 1, Text: "ab"}, {TID: 2, Text: "cd"}}
	p, err := NewIntersectSize(records, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.Select("ab")
	if err != nil {
		t.Fatal(err)
	}
	// "ab" → {$A, AB, B$}: 3 shared with itself.
	if len(ms) != 1 || ms[0].TID != 1 || ms[0].Score != 3 {
		t.Fatalf("intersect: %+v", ms)
	}
}

func TestJaccardRange(t *testing.T) {
	p, err := NewJaccard(companyRecords, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"AT&T", "Morgan Stanley", "zzzz", "Beijing Hotel"} {
		ms, err := p.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.Score <= 0 || m.Score > 1 {
				t.Errorf("Jaccard(%q, tid %d) = %v out of (0,1]", q, m.TID, m.Score)
			}
		}
	}
}

func TestMatchesSortedContract(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0
	preds := buildAll(t, companyRecords, cfg)
	for name, p := range preds {
		ms, err := p.Select("Morgan Group")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ms); i++ {
			if ms[i].Score > ms[i-1].Score ||
				(ms[i].Score == ms[i-1].Score && ms[i].TID < ms[i-1].TID) {
				t.Errorf("%s: ordering violated at %d: %+v", name, i, ms[i-1:i+1])
			}
		}
	}
}

func TestNoSharedTokensNoResults(t *testing.T) {
	records := []core.Record{{TID: 1, Text: "aaaa"}}
	for _, name := range []string{"IntersectSize", "Jaccard", "Cosine", "BM25", "LM", "HMM"} {
		p, err := Build(name, records, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ms, err := p.Select("zzzz")
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 0 {
			t.Errorf("%s: query sharing no tokens returned %v", name, ms)
		}
	}
}

// TestEditFilterMatchesBruteForce checks the no-false-negative guarantee of
// the q-gram filter: filtered results must exactly equal the brute-force
// ranking thresholded at θ.
func TestEditFilterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := "abcdefg "
	randStr := func() string {
		n := 4 + rng.Intn(18)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		return strings.TrimSpace(sb.String()) + "x"
	}
	var records []core.Record
	for i := 0; i < 120; i++ {
		records = append(records, core.Record{TID: i + 1, Text: randStr()})
	}
	for _, theta := range []float64{0.5, 0.7, 0.9} {
		cfgF := core.DefaultConfig()
		cfgF.EditTheta = theta
		filtered, err := NewEditDistance(records, cfgF)
		if err != nil {
			t.Fatal(err)
		}
		cfgB := core.DefaultConfig()
		cfgB.EditTheta = 0
		brute, err := NewEditDistance(records, cfgB)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			q := randStr()
			fm, err := filtered.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			bm, err := brute.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]float64{}
			for _, m := range bm {
				if m.Score >= theta {
					want[m.TID] = m.Score
				}
			}
			got := map[int]float64{}
			for _, m := range fm {
				got[m.TID] = m.Score
			}
			if len(got) != len(want) {
				t.Fatalf("θ=%v query %q: filtered %d, brute-force %d", theta, q, len(got), len(want))
			}
			for tid, ws := range want {
				if gs, ok := got[tid]; !ok || math.Abs(gs-ws) > 1e-12 {
					t.Fatalf("θ=%v query %q tid %d: got %v, want %v", theta, q, tid, gs, ws)
				}
			}
		}
	}
}

// TestGESJaccardFilterIsOverestimate: every record whose exact GES score
// reaches θ must survive the Eq. 4.7 filter (the bound over-estimates GES).
func TestGESJaccardFilterSubsumesHighScores(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.GESThreshold = 0.6
	filt, err := NewGESJaccard(companyRecords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewGES(companyRecords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"Morgan Stanley Group Inc.", "AT&T Incorporated", "Beijing Hotel"} {
		em, err := exact.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := filt.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for _, m := range fm {
			got[m.TID] = true
		}
		for _, m := range em {
			if m.Score >= cfg.GESThreshold && !got[m.TID] {
				t.Errorf("query %q: record %d with exact GES %v pruned by filter", q, m.TID, m.Score)
			}
		}
	}
}

func TestGESapxReturnsCandidates(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.GESThreshold = 0.5
	p, err := NewGESapx(companyRecords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.Select("Morgan Stanley Group Inc.")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].TID != 4 {
		t.Fatalf("GESapx: %+v", ms)
	}
}

func TestGESapxDefaultsK(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MinHashK = 0 // should fall back to the paper's 5
	if _, err := NewGESapx(companyRecords, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSoftTFIDFMatchesCloseWords(t *testing.T) {
	cfg := core.DefaultConfig()
	p, err := NewSoftTFIDF(companyRecords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "Stanlwey" is within Jaro–Winkler 0.8 of "Stanley".
	ms, err := p.Select("Morgan Stanlwey Group")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || (ms[0].TID != 4 && ms[0].TID != 5) {
		t.Fatalf("SoftTFIDF: %+v", ms)
	}
}

func TestEmptyQueries(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0.7
	preds := buildAll(t, companyRecords, cfg)
	for name, p := range preds {
		if _, err := p.Select(""); err != nil {
			t.Errorf("%s.Select(\"\") errored: %v", name, err)
		}
		_ = name
	}
}

func TestPruningImprovesUnweightedAccuracyShape(t *testing.T) {
	// With aggressive pruning, frequent grams ('$'-boundary grams of common
	// suffixes like "Inc.") drop out; the unweighted intersect score between
	// AT&T variants must then rely on rarer grams only.
	cfg := core.DefaultConfig()
	cfg.PruneRate = 0.3
	p, err := NewIntersectSize(companyRecords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := rank(t, p, "AT&T Incorporated")
	if len(ids) == 0 || ids[0] != 1 {
		t.Fatalf("pruned IntersectSize should still find the exact record: %v", ids)
	}
}

func TestPreprocessPhasesReported(t *testing.T) {
	p, err := NewBM25(companyRecords, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tok, w := p.PreprocessPhases()
	if tok < 0 || w < 0 {
		t.Fatalf("phases: %v %v", tok, w)
	}
}

func TestHMMWeightsAboveOneGiveMonotoneScores(t *testing.T) {
	// A record sharing strictly more tokens with the query scores higher.
	records := []core.Record{
		{TID: 1, Text: "abcdef"},
		{TID: 2, Text: "abcxyz"},
		{TID: 3, Text: "abzzzz"},
	}
	p, err := NewHMM(records, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := rank(t, p, "abcdef")
	if ids[0] != 1 || position(ids, 2) > position(ids, 3) && position(ids, 3) >= 0 {
		t.Fatalf("HMM monotonicity: %v", ids)
	}
}

func TestGESCostProperties(t *testing.T) {
	// Identical sequences cost 0; a deleted token costs its weight.
	w := []float64{2, 3}
	words := []string{"ALPHA", "BETA"}
	if c := GESCost(words, w, words, w, 0.5); c != 0 {
		t.Errorf("identical sequences cost %v", c)
	}
	c := GESCost(words, w, words[:1], []float64{2}, 0.5)
	if math.Abs(c-3) > 1e-12 {
		t.Errorf("deleting BETA should cost 3, got %v", c)
	}
	// Insertion costs cins × weight.
	c = GESCost(words[:1], w[:1], words, w, 0.5)
	if math.Abs(c-0.5*3) > 1e-12 {
		t.Errorf("inserting BETA should cost 1.5, got %v", c)
	}
}

func TestGESScoreClamps(t *testing.T) {
	if s := GESScore(100, 1); s != 0 {
		t.Errorf("cost far above wt(Q) should clamp to 0, got %v", s)
	}
	if s := GESScore(0, 5); s != 1 {
		t.Errorf("zero cost should score 1, got %v", s)
	}
	if s := GESScore(1, 0); s != 0 {
		t.Errorf("zero query weight should score 0, got %v", s)
	}
}

func TestEditNormalize(t *testing.T) {
	if got := editNormalize("db  lab", 3); got != "DB$$LAB" {
		t.Errorf("editNormalize = %q", got)
	}
	if got := editNormalize(" x ", 2); got != "X" {
		t.Errorf("editNormalize trim = %q", got)
	}
}
