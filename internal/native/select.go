package native

import (
	"context"

	"repro/internal/core"
)

// Every native predicate implements core.Predicate through a plain Select
// and core.ContextPredicate through SelectCtx: the options-aware selectOpts
// path is shared, so a limit or threshold is pushed down into ranking (a
// k-bounded heap and pre-materialization filtering) instead of being
// post-applied to the full sorted candidate set.
//
// Context cancellation is honored at query granularity: a Select already in
// flight runs to completion, which keeps the scoring loops branch-free.

// ConcurrentProbeSafe implements core.ConcurrentProber for every native
// predicate via the embedded phases record: after preprocessing the
// predicates are read-only, so concurrent Selects are safe (verified under
// -race by TestConcurrentSelect).
func (*phases) ConcurrentProbeSafe() bool { return true }

func selectCtx(ctx context.Context, f func(string, core.SelectOptions) ([]core.Match, error), query string, opts core.SelectOptions) ([]core.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f(query, opts)
}

// Select implements core.Predicate.
func (p *IntersectSize) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *IntersectSize) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *Jaccard) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *Jaccard) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *WeightedMatch) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *WeightedMatch) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *WeightedJaccard) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *WeightedJaccard) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *Cosine) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *Cosine) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *BM25) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *BM25) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *LM) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *LM) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *HMM) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *HMM) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *EditDistance) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *EditDistance) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *GES) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *GES) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *GESJaccard) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *GESJaccard) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *GESapx) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *GESapx) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Select implements core.Predicate.
func (p *SoftTFIDF) Select(query string) ([]core.Match, error) {
	return p.selectOpts(query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate.
func (p *SoftTFIDF) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]core.Match, error) {
	return selectCtx(ctx, p.selectOpts, query, opts)
}

// Builders is the registration table of the native realization: one
// BuilderFunc per benchmark predicate, in terms of which the facade's
// registry resolves New.
func Builders() map[string]core.BuilderFunc {
	out := make(map[string]core.BuilderFunc, len(core.PredicateNames))
	for _, name := range core.PredicateNames {
		out[name] = func(records []core.Record, cfg core.Config) (core.Predicate, error) {
			return Build(name, records, cfg)
		}
	}
	return out
}

// CorpusBuilders is the corpus-aware registration table of the native
// realization: one CorpusBuilderFunc per benchmark predicate, each
// attaching to a shared core.Corpus instead of preprocessing a private
// copy of the relation.
func CorpusBuilders() map[string]core.CorpusBuilderFunc {
	out := make(map[string]core.CorpusBuilderFunc, len(core.PredicateNames))
	for _, name := range core.PredicateNames {
		out[name] = func(c *core.Corpus, cfg core.Config) (core.Predicate, error) {
			return Attach(name, c, cfg)
		}
	}
	return out
}
