package native

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/minhash"
	"repro/internal/strutil"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// The combination predicates (§3.5, §4.5, Appendix B.4) work on word tokens
// and combine token-level weights with a character-level similarity. All of
// them upper-case word tokens, consistent with the q-gram tokenization the
// declarative framework applies to words (Appendix A.3).

// wordData is the shared word-level preprocessing state.
type wordData struct {
	records []core.Record
	words   [][]string // ordered word tokens per record, upper-cased
	counts  []map[string]int
	corpus  *weights.Corpus // word-token corpus (idf weights, Eq. 4.7)
}

func buildWordData(records []core.Record) *wordData {
	wd := &wordData{
		records: records,
		words:   make([][]string, len(records)),
		counts:  make([]map[string]int, len(records)),
	}
	docs := make([][]string, len(records))
	for i, r := range records {
		ws := tokenize.Words(strings.ToUpper(r.Text))
		wd.words[i] = ws
		wd.counts[i] = tokenize.Counts(ws)
		docs[i] = ws
	}
	wd.corpus = weights.Build(docs)
	return wd
}

func queryWords(query string) []string {
	return tokenize.Words(strings.ToUpper(query))
}

// GESCost computes the GES transformation cost tc(Q → D) of §3.5 with a
// token-sequence dynamic program: replacing q_i by d_j costs
// (1 − sim_edit(q_i,d_j))·w(q_i), inserting d_j costs c_ins·w(d_j), and
// deleting q_i costs w(q_i). It is exported so the declarative realization's
// UDF shares the exact same kernel.
func GESCost(qws []string, qWeights []float64, dws []string, dWeights []float64, cins float64) float64 {
	n, m := len(qws), len(dws)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + cins*dWeights[j-1]
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + qWeights[i-1]
		for j := 1; j <= m; j++ {
			repl := prev[j-1] + (1-strutil.EditSimilarity(qws[i-1], dws[j-1]))*qWeights[i-1]
			del := prev[j] + qWeights[i-1]
			ins := cur[j-1] + cins*dWeights[j-1]
			best := repl
			if del < best {
				best = del
			}
			if ins < best {
				best = ins
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// GESScore turns a transformation cost into the similarity of Eq. 3.14.
func GESScore(cost, wtQ float64) float64 {
	if wtQ == 0 {
		return 0
	}
	frac := cost / wtQ
	if frac > 1 {
		frac = 1
	}
	return 1 - frac
}

// gesEval is the shared exact-GES scorer over a word-level base.
type gesEval struct {
	wd      *wordData
	cins    float64
	weights [][]float64 // per record, per word position, idf weight
}

func newGESEval(wd *wordData, cins float64) *gesEval {
	g := &gesEval{wd: wd, cins: cins, weights: make([][]float64, len(wd.words))}
	for i, ws := range wd.words {
		w := make([]float64, len(ws))
		for j, t := range ws {
			w[j] = wd.corpus.IDF(t)
		}
		g.weights[i] = w
	}
	return g
}

// queryWeights returns per-position idf weights and their sum for a query's
// word tokens; unseen tokens take the average idf (§4.5).
func (g *gesEval) queryWeights(qws []string) ([]float64, float64) {
	w := make([]float64, len(qws))
	wt := 0.0
	for i, t := range qws {
		w[i] = g.wd.corpus.IDF(t)
		wt += w[i]
	}
	return w, wt
}

func (g *gesEval) score(qws []string, qWeights []float64, wtQ float64, idx int) float64 {
	cost := GESCost(qws, qWeights, g.wd.words[idx], g.weights[idx], g.cins)
	return GESScore(cost, wtQ)
}

// GES is the exact generalized edit similarity predicate (Eq. 3.14). Exact
// scoring touches every record — precisely the cost GESJaccard and GESapx
// were designed to avoid.
type GES struct {
	phases
	wd  *wordData
	ges *gesEval
}

// NewGES preprocesses the base relation for exact GES.
func NewGES(records []core.Record, cfg core.Config) (*GES, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	wd := buildWordData(records)
	t1 := time.Now()
	p := &GES{wd: wd, ges: newGESEval(wd, cfg.GESCins)}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *GES) Name() string { return "GES" }

// selectOpts scores every base record with exact GES.
func (p *GES) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	out := make([]core.Match, 0, len(p.wd.records))
	for i, r := range p.wd.records {
		score := p.ges.score(qws, qWeights, wtQ, i)
		if !opts.Keeps(score) {
			continue
		}
		out = append(out, core.Match{TID: r.TID, Score: score})
	}
	return core.FinishMatches(out, opts), nil
}

// wordRef locates one distinct word of one record.
type wordRef struct {
	rec  int
	word int
}

// GESJaccard filters candidates with the over-estimating Jaccard bound of
// Eq. 4.7 before verifying them with exact GES.
type GESJaccard struct {
	phases
	wd    *wordData
	ges   *gesEval
	vocab [][]string // distinct words per record
	sizes [][]int    // distinct q-gram set size per (record, word)
	index map[string][]wordRef
	q     int
	theta float64
}

// NewGESJaccard preprocesses the base relation for the filtered predicate.
func NewGESJaccard(records []core.Record, cfg core.Config) (*GESJaccard, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	wd := buildWordData(records)
	p := &GESJaccard{
		wd:    wd,
		q:     cfg.WordQ,
		theta: cfg.GESThreshold,
		vocab: make([][]string, len(records)),
		sizes: make([][]int, len(records)),
		index: make(map[string][]wordRef),
	}
	for i := range records {
		p.vocab[i] = tokenize.Distinct(wd.words[i])
	}
	t1 := time.Now()
	for i, vocab := range p.vocab {
		p.sizes[i] = make([]int, len(vocab))
		for j, w := range vocab {
			grams := tokenize.Distinct(tokenize.WordQGrams(w, p.q))
			p.sizes[i][j] = len(grams)
			for _, g := range grams {
				p.index[g] = append(p.index[g], wordRef{rec: i, word: j})
			}
		}
	}
	p.ges = newGESEval(wd, cfg.GESCins)
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *GESJaccard) Name() string { return "GESJaccard" }

// selectOpts generates candidates whose Eq. 4.7 over-estimate reaches θ, then
// ranks them by exact GES score.
func (p *GESJaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	if wtQ == 0 {
		return nil, nil
	}
	dq := 1 - 1.0/float64(p.q)
	twoOverQ := 2.0 / float64(p.q)

	// maxsim per record per distinct query word.
	maxsim := map[int][]float64{}
	distinctQ := tokenize.Distinct(qws)
	for qi, t := range distinctQ {
		grams := tokenize.Distinct(tokenize.WordQGrams(t, p.q))
		common := map[wordRef]int{}
		for _, g := range grams {
			for _, ref := range p.index[g] {
				common[ref]++
			}
		}
		for ref, c := range common {
			jac := float64(c) / float64(len(grams)+p.sizes[ref.rec][ref.word]-c)
			ms, ok := maxsim[ref.rec]
			if !ok {
				ms = make([]float64, len(distinctQ))
				maxsim[ref.rec] = ms
			}
			if jac > ms[qi] {
				ms[qi] = jac
			}
		}
	}

	// Filter score over matched query words only (Fig. 4.6's SQL shape).
	acc := accumulator{}
	for rec, ms := range maxsim {
		score := 0.0
		for qi, t := range distinctQ {
			if ms[qi] == 0 {
				continue
			}
			score += p.wd.corpus.IDF(t) * (twoOverQ*ms[qi] + dq)
		}
		score = (1.0 / wtQ) * score // match the SQL plan's association order
		if score >= p.theta {
			acc[rec] = p.ges.score(qws, qWeights, wtQ, rec)
		}
	}
	return acc.matches2(p.wd.records, opts), nil
}

// GESapx replaces the token-level Jaccard of GESJaccard with a min-hash
// estimate (Eq. 4.8), trading accuracy for faster filtering.
type GESapx struct {
	phases
	wd     *wordData
	ges    *gesEval
	vocab  [][]string
	family *minhash.Family
	// index maps (hash slot, signature value) to the words whose signature
	// has that value in that slot — the declarative join's shape.
	index map[sigKey][]wordRef
	q     int
	theta float64
}

type sigKey struct {
	fid   int
	value uint64
}

// NewGESapx preprocesses the base relation with min-hash signatures.
func NewGESapx(records []core.Record, cfg core.Config) (*GESapx, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	if cfg.MinHashK <= 0 {
		cfg.MinHashK = core.DefaultConfig().MinHashK
	}
	t0 := time.Now()
	wd := buildWordData(records)
	p := &GESapx{
		wd:     wd,
		q:      cfg.WordQ,
		theta:  cfg.GESThreshold,
		family: minhash.NewFamily(cfg.MinHashK, cfg.MinHashSeed),
		vocab:  make([][]string, len(records)),
		index:  make(map[sigKey][]wordRef),
	}
	for i := range records {
		p.vocab[i] = tokenize.Distinct(wd.words[i])
	}
	t1 := time.Now()
	for i, vocab := range p.vocab {
		for j, w := range vocab {
			sig := p.family.Signature(tokenize.Distinct(tokenize.WordQGrams(w, p.q)))
			for fid, v := range sig {
				k := sigKey{fid: fid, value: v}
				p.index[k] = append(p.index[k], wordRef{rec: i, word: j})
			}
		}
	}
	p.ges = newGESEval(wd, cfg.GESCins)
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *GESapx) Name() string { return "GESapx" }

// selectOpts generates candidates with the min-hash estimate of Eq. 4.8 and
// ranks them by exact GES score.
func (p *GESapx) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	if wtQ == 0 {
		return nil, nil
	}
	dq := 1 - 1.0/float64(p.q)
	twoOverQ := 2.0 / float64(p.q)
	k := float64(p.family.K())

	maxsim := map[int][]float64{}
	distinctQ := tokenize.Distinct(qws)
	for qi, t := range distinctQ {
		sig := p.family.Signature(tokenize.Distinct(tokenize.WordQGrams(t, p.q)))
		matchCount := map[wordRef]int{}
		for fid, v := range sig {
			for _, ref := range p.index[sigKey{fid: fid, value: v}] {
				matchCount[ref]++
			}
		}
		for ref, c := range matchCount {
			sim := float64(c) / k
			ms, ok := maxsim[ref.rec]
			if !ok {
				ms = make([]float64, len(distinctQ))
				maxsim[ref.rec] = ms
			}
			if sim > ms[qi] {
				ms[qi] = sim
			}
		}
	}

	acc := accumulator{}
	for rec, ms := range maxsim {
		score := 0.0
		for qi, t := range distinctQ {
			if ms[qi] == 0 {
				continue
			}
			score += p.wd.corpus.IDF(t) * (twoOverQ*ms[qi] + dq)
		}
		score = (1.0 / wtQ) * score // match the SQL plan's association order
		if score >= p.theta {
			acc[rec] = p.ges.score(qws, qWeights, wtQ, rec)
		}
	}
	return acc.matches2(p.wd.records, opts), nil
}

// SoftTFIDF combines normalized tf-idf word weights with Jaro–Winkler
// word-level similarity (Eq. 3.15), the configuration Cohen et al. found
// strongest and the paper confirms (§5.3.2).
type SoftTFIDF struct {
	phases
	wd      *wordData
	weights []map[string]float64 // normalized tf-idf per record
	theta   float64
}

// NewSoftTFIDF preprocesses the base relation for SoftTFIDF.
func NewSoftTFIDF(records []core.Record, cfg core.Config) (*SoftTFIDF, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	wd := buildWordData(records)
	t1 := time.Now()
	p := &SoftTFIDF{wd: wd, theta: cfg.SoftTFIDFTheta, weights: make([]map[string]float64, len(records))}
	for i, counts := range wd.counts {
		p.weights[i] = wd.corpus.TFIDF(counts)
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *SoftTFIDF) Name() string { return "SoftTFIDF" }

// selectOpts ranks records by Eq. 3.15: for every query word within θ of some
// record word (CLOSE set), the contribution is w_q(t)·w_d(argmax)·maxsim.
// Multiplicities follow the declarative cross-product: repeated query or
// record word occurrences contribute repeatedly, and argmax ties all count.
func (p *SoftTFIDF) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qcounts := tokenize.Counts(qws)
	qw := p.wd.corpus.TFIDF(knownCounts(qcounts, p.wd.corpus))
	acc := accumulator{}
	for i := range p.wd.records {
		recWords := p.wd.words[i]
		if len(recWords) == 0 {
			continue
		}
		total := 0.0
		matched := false
		for _, t := range sortedTokens(qw) {
			wq := qw[t]
			maxsim := 0.0
			for _, r := range recWords {
				if sim := strutil.JaroWinkler(t, r); sim >= p.theta && sim > maxsim {
					maxsim = sim
				}
			}
			if maxsim == 0 {
				continue
			}
			matched = true
			qtf := float64(qcounts[t])
			for _, r := range recWords {
				if strutil.JaroWinkler(t, r) == maxsim {
					total += qtf * wq * p.weights[i][r] * maxsim
				}
			}
		}
		if matched {
			acc[i] = total
		}
	}
	return acc.matches2(p.wd.records, opts), nil
}

// knownCounts filters a count map to tokens known to the corpus.
func knownCounts(counts map[string]int, c *weights.Corpus) map[string]int {
	out := make(map[string]int, len(counts))
	for t, tf := range counts {
		if c.Known(t) {
			out[t] = tf
		}
	}
	return out
}

// matches2 is accumulator.matches for word-level predicates (which do not
// carry a tokenData).
func (a accumulator) matches2(records []core.Record, opts core.SelectOptions) []core.Match {
	out := make([]core.Match, 0, len(a))
	for idx, score := range a {
		if !opts.Keeps(score) {
			continue
		}
		out = append(out, core.Match{TID: records[idx].TID, Score: score})
	}
	return core.FinishMatches(out, opts)
}
