package native

import (
	"strings"

	"repro/internal/core"
	"repro/internal/minhash"
	"repro/internal/strutil"
	"repro/internal/tokenize"
)

// The combination predicates (§3.5, §4.5, Appendix B.4) work on word tokens
// and combine token-level weights with a character-level similarity. All of
// them upper-case word tokens, consistent with the q-gram tokenization the
// declarative framework applies to words (Appendix A.3). The word token
// tables, per-position idf weights, word q-gram sets and min-hash
// signatures are shared corpus layers, so the four predicates attach to one
// word tokenization pass.

func queryWords(query string) []string {
	return tokenize.Words(strings.ToUpper(query))
}

// GESCost computes the GES transformation cost tc(Q → D) of §3.5 with a
// token-sequence dynamic program: replacing q_i by d_j costs
// (1 − sim_edit(q_i,d_j))·w(q_i), inserting d_j costs c_ins·w(d_j), and
// deleting q_i costs w(q_i). It is exported so the declarative realization's
// UDF shares the exact same kernel.
func GESCost(qws []string, qWeights []float64, dws []string, dWeights []float64, cins float64) float64 {
	n, m := len(qws), len(dws)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + cins*dWeights[j-1]
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + qWeights[i-1]
		for j := 1; j <= m; j++ {
			repl := prev[j-1] + (1-strutil.EditSimilarity(qws[i-1], dws[j-1]))*qWeights[i-1]
			del := prev[j] + qWeights[i-1]
			ins := cur[j-1] + cins*dWeights[j-1]
			best := repl
			if del < best {
				best = del
			}
			if ins < best {
				best = ins
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// GESScore turns a transformation cost into the similarity of Eq. 3.14.
func GESScore(cost, wtQ float64) float64 {
	if wtQ == 0 {
		return 0
	}
	frac := cost / wtQ
	if frac > 1 {
		frac = 1
	}
	return 1 - frac
}

// gesEval is the shared exact-GES scorer over the corpus's word layer: the
// per-position idf weight vectors are shared corpus state, only the cins
// parameter is per-attach.
type gesEval struct {
	w    *core.WordLayer
	cins float64
}

// queryWeights returns per-position idf weights and their sum for a query's
// word tokens; unseen tokens take the average idf (§4.5).
func (g *gesEval) queryWeights(qws []string) ([]float64, float64) {
	w := make([]float64, len(qws))
	wt := 0.0
	for i, t := range qws {
		w[i] = g.w.Stats.IDF(t)
		wt += w[i]
	}
	return w, wt
}

func (g *gesEval) score(qws []string, qWeights []float64, wtQ float64, idx int) float64 {
	cost := GESCost(qws, qWeights, g.w.Words[idx], g.w.IDFWeights[idx], g.cins)
	return GESScore(cost, wtQ)
}

// GES is the exact generalized edit similarity predicate (Eq. 3.14). Exact
// scoring touches every record — precisely the cost GESJaccard and GESapx
// were designed to avoid.
type GES struct {
	phases
	recs []core.Record
	ges  *gesEval
}

// NewGES preprocesses the base relation for exact GES.
func NewGES(records []core.Record, cfg core.Config) (*GES, error) {
	p, err := Build("GES", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*GES), nil
}

func attachGES(s *core.Snapshot, cfg core.Config) *GES {
	return &GES{recs: s.Records, ges: &gesEval{w: s.Words, cins: cfg.GESCins}}
}

// Name implements core.Predicate.
func (p *GES) Name() string { return "GES" }

// selectOpts scores every base record with exact GES.
func (p *GES) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	out := make([]core.Match, 0, len(p.recs))
	for i, r := range p.recs {
		score := p.ges.score(qws, qWeights, wtQ, i)
		if !opts.Keeps(score) {
			continue
		}
		out = append(out, core.Match{TID: r.TID, Score: score})
	}
	return core.FinishMatches(out, opts), nil
}

// selectNaive: exact GES never used per-query accumulator maps — the
// reference path is the production path.
func (p *GES) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	return p.selectOpts(query, opts)
}

// GESJaccard filters candidates with the over-estimating Jaccard bound of
// Eq. 4.7 before verifying them with exact GES. The word q-gram inverted
// index is shared corpus state (core.LayerWordGrams).
type GESJaccard struct {
	phases
	recs  []core.Record
	w     *core.WordLayer
	ges   *gesEval
	q     int
	theta float64
}

// NewGESJaccard preprocesses the base relation for the filtered predicate.
func NewGESJaccard(records []core.Record, cfg core.Config) (*GESJaccard, error) {
	p, err := Build("GESJaccard", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*GESJaccard), nil
}

func attachGESJaccard(s *core.Snapshot, cfg core.Config) *GESJaccard {
	return &GESJaccard{
		recs:  s.Records,
		w:     s.Words,
		ges:   &gesEval{w: s.Words, cins: cfg.GESCins},
		q:     cfg.WordQ,
		theta: cfg.GESThreshold,
	}
}

// Name implements core.Predicate.
func (p *GESJaccard) Name() string { return "GESJaccard" }

// selectOpts generates candidates whose Eq. 4.7 over-estimate reaches θ, then
// ranks them by exact GES score. Per-word gram-match counts accumulate in a
// dense scratch over the corpus's flat word-id space, and the per-record
// maxsim rows live in a second scratch's flat stride buffer — the former
// WordRef- and record-keyed maps of this filter, pooled and reused.
func (p *GESJaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	if wtQ == 0 {
		return nil, nil
	}
	distinctQ := tokenize.Distinct(qws)
	ws := core.GetScratch(p.w.WordTotal)
	rs := core.GetScratch(len(p.recs))
	defer ws.Release()
	defer rs.Release()
	for qi, t := range distinctQ {
		grams := tokenize.Distinct(tokenize.WordQGrams(t, p.q))
		ws.Reset(p.w.WordTotal)
		for _, g := range grams {
			for _, ref := range p.w.GramIndex[g] {
				ws.Add(p.w.WordOff[ref.Rec]+int32(ref.Word), 1)
			}
		}
		for _, wid := range ws.Touched() {
			c := ws.Val(wid)
			jac := c / (float64(len(grams)+int(p.w.GramSizeOf[wid])) - c)
			row := rs.RowFor(p.w.WordRecOf[wid], len(distinctQ))
			if jac > row[qi] {
				row[qi] = jac
			}
		}
	}
	return gesVerifyCandidates(p.recs, p.w, p.ges, p.q, p.theta, rs, distinctQ, qws, qWeights, wtQ, opts), nil
}

// gesVerifyCandidates evaluates the Fig. 4.6 filter score over matched
// query words only and verifies survivors with exact GES. It is shared by
// GESJaccard and GESapx, whose filters differ only in how the candidate
// maxsim rows are estimated.
func gesVerifyCandidates(recs []core.Record, w *core.WordLayer, ges *gesEval, q int, theta float64, rs *core.Scratch, distinctQ []string, qws []string, qWeights []float64, wtQ float64, opts core.SelectOptions) []core.Match {
	dq := 1 - 1.0/float64(q)
	twoOverQ := 2.0 / float64(q)
	out := make([]core.Match, 0, len(rs.Touched()))
	for _, rec := range rs.Touched() {
		ms := rs.RowFor(rec, len(distinctQ))
		score := 0.0
		for qi, t := range distinctQ {
			if ms[qi] == 0 {
				continue
			}
			score += w.Stats.IDF(t) * (twoOverQ*ms[qi] + dq)
		}
		score = (1.0 / wtQ) * score // match the SQL plan's association order
		if score >= theta {
			g := ges.score(qws, qWeights, wtQ, int(rec))
			if opts.Keeps(g) {
				out = append(out, core.Match{TID: recs[rec].TID, Score: g})
			}
		}
	}
	return core.FinishMatches(out, opts)
}

// selectNaive is the pre-optimization filter: WordRef- and record-keyed
// maps allocated per query.
func (p *GESJaccard) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	if wtQ == 0 {
		return nil, nil
	}
	dq := 1 - 1.0/float64(p.q)
	twoOverQ := 2.0 / float64(p.q)

	// maxsim per record per distinct query word.
	maxsim := map[int][]float64{}
	distinctQ := tokenize.Distinct(qws)
	for qi, t := range distinctQ {
		grams := tokenize.Distinct(tokenize.WordQGrams(t, p.q))
		common := map[core.WordRef]int{}
		for _, g := range grams {
			for _, ref := range p.w.GramIndex[g] {
				common[ref]++
			}
		}
		for ref, c := range common {
			jac := float64(c) / float64(len(grams)+p.w.GramSizes[ref.Rec][ref.Word]-c)
			ms, ok := maxsim[ref.Rec]
			if !ok {
				ms = make([]float64, len(distinctQ))
				maxsim[ref.Rec] = ms
			}
			if jac > ms[qi] {
				ms[qi] = jac
			}
		}
	}

	// Filter score over matched query words only (Fig. 4.6's SQL shape).
	acc := accumulator{}
	for rec, ms := range maxsim {
		score := 0.0
		for qi, t := range distinctQ {
			if ms[qi] == 0 {
				continue
			}
			score += p.w.Stats.IDF(t) * (twoOverQ*ms[qi] + dq)
		}
		score = (1.0 / wtQ) * score // match the SQL plan's association order
		if score >= p.theta {
			acc[rec] = p.ges.score(qws, qWeights, wtQ, rec)
		}
	}
	return acc.matches(p.recs, opts), nil
}

// GESapx replaces the token-level Jaccard of GESJaccard with a min-hash
// estimate (Eq. 4.8), trading accuracy for faster filtering. The signature
// index is shared corpus state (core.LayerSigs); only the query-side hash
// family is reconstructed at attach (it is deterministic in k and seed).
type GESapx struct {
	phases
	recs   []core.Record
	w      *core.WordLayer
	ges    *gesEval
	family *minhash.Family
	q      int
	theta  float64
}

// NewGESapx preprocesses the base relation with min-hash signatures.
func NewGESapx(records []core.Record, cfg core.Config) (*GESapx, error) {
	p, err := Build("GESapx", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*GESapx), nil
}

func attachGESapx(s *core.Snapshot, cfg core.Config) *GESapx {
	return &GESapx{
		recs:   s.Records,
		w:      s.Words,
		ges:    &gesEval{w: s.Words, cins: cfg.GESCins},
		family: minhash.NewFamily(cfg.MinHashSize(), cfg.MinHashSeed),
		q:      cfg.WordQ,
		theta:  cfg.GESThreshold,
	}
}

// Name implements core.Predicate.
func (p *GESapx) Name() string { return "GESapx" }

// selectOpts generates candidates with the min-hash estimate of Eq. 4.8 and
// ranks them by exact GES score, accumulating signature-slot matches in the
// dense word-id scratch exactly like GESJaccard's filter.
func (p *GESapx) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	if wtQ == 0 {
		return nil, nil
	}
	k := float64(p.family.K())
	distinctQ := tokenize.Distinct(qws)
	ws := core.GetScratch(p.w.WordTotal)
	rs := core.GetScratch(len(p.recs))
	defer ws.Release()
	defer rs.Release()
	for qi, t := range distinctQ {
		sig := p.family.Signature(tokenize.Distinct(tokenize.WordQGrams(t, p.q)))
		ws.Reset(p.w.WordTotal)
		for slot, v := range sig {
			for _, ref := range p.w.SigIndex[core.SigKey{Slot: slot, Value: v}] {
				ws.Add(p.w.WordOff[ref.Rec]+int32(ref.Word), 1)
			}
		}
		for _, wid := range ws.Touched() {
			sim := ws.Val(wid) / k
			row := rs.RowFor(p.w.WordRecOf[wid], len(distinctQ))
			if sim > row[qi] {
				row[qi] = sim
			}
		}
	}
	return gesVerifyCandidates(p.recs, p.w, p.ges, p.q, p.theta, rs, distinctQ, qws, qWeights, wtQ, opts), nil
}

// selectNaive is the pre-optimization filter with per-query maps.
func (p *GESapx) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qWeights, wtQ := p.ges.queryWeights(qws)
	if wtQ == 0 {
		return nil, nil
	}
	dq := 1 - 1.0/float64(p.q)
	twoOverQ := 2.0 / float64(p.q)
	k := float64(p.family.K())

	maxsim := map[int][]float64{}
	distinctQ := tokenize.Distinct(qws)
	for qi, t := range distinctQ {
		sig := p.family.Signature(tokenize.Distinct(tokenize.WordQGrams(t, p.q)))
		matchCount := map[core.WordRef]int{}
		for slot, v := range sig {
			for _, ref := range p.w.SigIndex[core.SigKey{Slot: slot, Value: v}] {
				matchCount[ref]++
			}
		}
		for ref, c := range matchCount {
			sim := float64(c) / k
			ms, ok := maxsim[ref.Rec]
			if !ok {
				ms = make([]float64, len(distinctQ))
				maxsim[ref.Rec] = ms
			}
			if sim > ms[qi] {
				ms[qi] = sim
			}
		}
	}

	acc := accumulator{}
	for rec, ms := range maxsim {
		score := 0.0
		for qi, t := range distinctQ {
			if ms[qi] == 0 {
				continue
			}
			score += p.w.Stats.IDF(t) * (twoOverQ*ms[qi] + dq)
		}
		score = (1.0 / wtQ) * score // match the SQL plan's association order
		if score >= p.theta {
			acc[rec] = p.ges.score(qws, qWeights, wtQ, rec)
		}
	}
	return acc.matches(p.recs, opts), nil
}

// SoftTFIDF combines normalized tf-idf word weights with Jaro–Winkler
// word-level similarity (Eq. 3.15), the configuration Cohen et al. found
// strongest and the paper confirms (§5.3.2). Its per-record weight maps are
// shared corpus state (core.LayerWordTFIDF).
type SoftTFIDF struct {
	phases
	recs  []core.Record
	w     *core.WordLayer
	theta float64
}

// NewSoftTFIDF preprocesses the base relation for SoftTFIDF.
func NewSoftTFIDF(records []core.Record, cfg core.Config) (*SoftTFIDF, error) {
	p, err := Build("SoftTFIDF", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*SoftTFIDF), nil
}

func attachSoftTFIDF(s *core.Snapshot, cfg core.Config) *SoftTFIDF {
	return &SoftTFIDF{recs: s.Records, w: s.Words, theta: cfg.SoftTFIDFTheta}
}

// Name implements core.Predicate.
func (p *SoftTFIDF) Name() string { return "SoftTFIDF" }

// selectOpts ranks records by Eq. 3.15: for every query word within θ of some
// record word (CLOSE set), the contribution is w_q(t)·w_d(argmax)·maxsim.
// Multiplicities follow the declarative cross-product: repeated query or
// record word occurrences contribute repeatedly, and argmax ties all count.
// The scan visits every record anyway, so matches materialize straight into
// the result slice — no accumulator at all.
func (p *SoftTFIDF) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qcounts := tokenize.Counts(qws)
	qw := p.w.Stats.TFIDF(qcounts)
	ordered := p.w.OrderedKnownWeights(qw)
	out := make([]core.Match, 0, len(p.recs))
	for i := range p.recs {
		total, matched := p.scoreRecord(i, ordered, qw, qcounts)
		if !matched || !opts.Keeps(total) {
			continue
		}
		out = append(out, core.Match{TID: p.recs[i].TID, Score: total})
	}
	return core.FinishMatches(out, opts), nil
}

// scoreRecord evaluates Eq. 3.15 for one record.
func (p *SoftTFIDF) scoreRecord(i int, ordered []string, qw map[string]float64, qcounts map[string]int) (float64, bool) {
	recWords := p.w.Words[i]
	if len(recWords) == 0 {
		return 0, false
	}
	total := 0.0
	matched := false
	for _, t := range ordered {
		wq := qw[t]
		maxsim := 0.0
		for _, r := range recWords {
			if sim := strutil.JaroWinkler(t, r); sim >= p.theta && sim > maxsim {
				maxsim = sim
			}
		}
		if maxsim == 0 {
			continue
		}
		matched = true
		qtf := float64(qcounts[t])
		for _, r := range recWords {
			if strutil.JaroWinkler(t, r) == maxsim {
				total += qtf * wq * p.w.TFIDF[i][r] * maxsim
			}
		}
	}
	return total, matched
}

// selectNaive is the pre-optimization merge through a map accumulator.
func (p *SoftTFIDF) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	qws := queryWords(query)
	if len(qws) == 0 {
		return nil, nil
	}
	qcounts := tokenize.Counts(qws)
	qw := p.w.Stats.TFIDF(qcounts)
	ordered := p.w.OrderedKnownWeights(qw)
	acc := accumulator{}
	for i := range p.recs {
		if total, matched := p.scoreRecord(i, ordered, qw, qcounts); matched {
			acc[i] = total
		}
	}
	return acc.matches(p.recs, opts), nil
}
