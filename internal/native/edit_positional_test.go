package native

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func randomEditRecords(n int, seed int64) []core.Record {
	rng := rand.New(rand.NewSource(seed))
	letters := "abcdefg "
	var records []core.Record
	for i := 0; i < n; i++ {
		ln := 5 + rng.Intn(20)
		var sb strings.Builder
		for j := 0; j < ln; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		text := strings.TrimSpace(sb.String()) + "z"
		records = append(records, core.Record{TID: i + 1, Text: text})
	}
	return records
}

// TestPositionalFilterNoFalseNegatives: the positional filter must return
// exactly the brute-force results thresholded at θ, like the count filter.
func TestPositionalFilterNoFalseNegatives(t *testing.T) {
	records := randomEditRecords(150, 3)
	for _, theta := range []float64{0.5, 0.7, 0.85} {
		cfgP := core.DefaultConfig()
		cfgP.EditTheta = theta
		cfgP.EditPositional = true
		positional, err := NewEditDistance(records, cfgP)
		if err != nil {
			t.Fatal(err)
		}
		cfgB := core.DefaultConfig()
		cfgB.EditTheta = 0
		brute, err := NewEditDistance(records, cfgB)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 20; trial++ {
			q := records[rng.Intn(len(records))].Text
			if trial%2 == 0 {
				// Perturb the query to make it an inexact probe.
				r := []rune(q)
				r[rng.Intn(len(r))] = 'x'
				q = string(r)
			}
			pm, err := positional.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			bm, err := brute.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]float64{}
			for _, m := range bm {
				if m.Score >= theta {
					want[m.TID] = m.Score
				}
			}
			if len(pm) != len(want) {
				t.Fatalf("θ=%v query %q: positional %d results, brute %d", theta, q, len(pm), len(want))
			}
			for _, m := range pm {
				if ws, ok := want[m.TID]; !ok || math.Abs(ws-m.Score) > 1e-12 {
					t.Fatalf("θ=%v query %q tid %d: %v vs %v", theta, q, m.TID, m.Score, ws)
				}
			}
		}
	}
}

// TestPositionalFilterIsTighter: positional candidate counting can only
// reduce the shared-gram count, never increase it.
func TestPositionalMatchWithinBounds(t *testing.T) {
	a := []int32{0, 1, 5, 9}
	b := []int32{2, 6, 7}
	for k := 0; k <= 10; k++ {
		m := matchWithin(a, b, k)
		if m > len(b) {
			t.Fatalf("k=%d: matched %d > min list length", k, m)
		}
		if k >= 10 && m != 3 {
			t.Fatalf("k=%d: all of b should match, got %d", k, m)
		}
	}
	if m := matchWithin(a, b, 0); m != 0 {
		t.Fatalf("k=0 with disjoint positions should match 0, got %d", m)
	}
	if m := matchWithin([]int32{3}, []int32{3}, 0); m != 1 {
		t.Fatalf("identical positions at k=0: %d", m)
	}
}

func TestPositionalMatchWithinGreedyOptimal(t *testing.T) {
	// Cross-check the greedy matcher against exhaustive matching on small
	// random inputs.
	rng := rand.New(rand.NewSource(4))
	exhaustive := func(a, b []int32, k int) int {
		best := 0
		var rec func(i int, used []bool, count int)
		rec = func(i int, used []bool, count int) {
			if count > best {
				best = count
			}
			if i >= len(a) {
				return
			}
			rec(i+1, used, count)
			for j := range b {
				if used[j] {
					continue
				}
				d := int(a[i]) - int(b[j])
				if d <= k && -d <= k {
					used[j] = true
					rec(i+1, used, count+1)
					used[j] = false
				}
			}
		}
		rec(0, make([]bool, len(b)), 0)
		return best
	}
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+rng.Intn(4), 1+rng.Intn(4)
		a := make([]int32, na)
		b := make([]int32, nb)
		for i := range a {
			a[i] = int32(rng.Intn(12))
		}
		for i := range b {
			b[i] = int32(rng.Intn(12))
		}
		sortInt32(a)
		sortInt32(b)
		k := rng.Intn(5)
		if g, e := matchWithin(a, b, k), exhaustive(a, b, k); g != e {
			t.Fatalf("greedy %d != exhaustive %d for a=%v b=%v k=%d", g, e, a, b, k)
		}
	}
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
