// Package native implements all thirteen similarity predicates of the
// benchmark as direct in-memory algorithms. These implementations serve two
// roles: they are the fast reference implementations exposed through the
// public API, and they act as differential-testing oracles for the
// declarative (SQL) realizations in package declarative — both must produce
// identical scores.
package native

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
	"unicode"

	"repro/internal/core"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// tokenData is the shared result of the tokenization phase: per-record
// q-gram multisets, their sizes, and corpus statistics, with optional IDF
// pruning (§5.6) applied.
type tokenData struct {
	records []core.Record
	counts  []map[string]int // q-gram counts per record (after pruning)
	dl      []int            // multiset sizes (after pruning)
	corpus  *weights.Corpus  // built over the (pruned) token multisets
}

// buildTokenData tokenizes every record into q-grams and applies IDF
// pruning when rate > 0: tokens with idf below
// min(idf) + rate·(max(idf) − min(idf)) are dropped, and all statistics are
// recomputed over the pruned relation so that probability distributions
// remain meaningful (§5.6).
func buildTokenData(records []core.Record, q int, rate float64) *tokenData {
	docs := make([][]string, len(records))
	for i, r := range records {
		docs[i] = tokenize.QGrams(r.Text, q)
	}
	if rate > 0 {
		docs = pruneDocs(docs, rate)
	}
	td := &tokenData{
		records: records,
		counts:  make([]map[string]int, len(records)),
		dl:      make([]int, len(records)),
	}
	for i, doc := range docs {
		td.counts[i] = tokenize.Counts(doc)
		td.dl[i] = len(doc)
	}
	td.corpus = weights.Build(docs)
	return td
}

// pruneDocs drops tokens whose idf falls below the pruning threshold.
func pruneDocs(docs [][]string, rate float64) [][]string {
	c := weights.Build(docs)
	minIDF, maxIDF := math.Inf(1), math.Inf(-1)
	seen := map[string]float64{}
	for _, doc := range docs {
		for _, t := range doc {
			if _, ok := seen[t]; ok {
				continue
			}
			idf := c.IDF(t)
			seen[t] = idf
			if idf < minIDF {
				minIDF = idf
			}
			if idf > maxIDF {
				maxIDF = idf
			}
		}
	}
	if len(seen) == 0 {
		return docs
	}
	threshold := minIDF + rate*(maxIDF-minIDF)
	out := make([][]string, len(docs))
	for i, doc := range docs {
		kept := make([]string, 0, len(doc))
		for _, t := range doc {
			if seen[t] >= threshold {
				kept = append(kept, t)
			}
		}
		out[i] = kept
	}
	return out
}

// pruneQueryTokens drops query tokens that were pruned away from (or never
// existed in) the base relation. Join-based scoring skips them anyway; this
// keeps length-normalized scores consistent with the declarative plans,
// which join query tokens against base weight tables.
func (td *tokenData) knownOnly(counts map[string]int) map[string]int {
	out := make(map[string]int, len(counts))
	for t, tf := range counts {
		if td.corpus.Known(t) {
			out[t] = tf
		}
	}
	return out
}

// accumulator gathers per-record scores during a Select.
type accumulator map[int]float64

// matches converts accumulated scores into the ranked Match slice contract,
// applying any selection options: below-threshold scores are dropped before
// materialization and a limit switches the full sort to a k-bounded heap.
func (a accumulator) matches(td *tokenData, opts core.SelectOptions) []core.Match {
	out := make([]core.Match, 0, len(a))
	for idx, score := range a {
		if !opts.Keeps(score) {
			continue
		}
		out = append(out, core.Match{TID: td.records[idx].TID, Score: score})
	}
	return core.FinishMatches(out, opts)
}

// editNormalize prepares a string for the edit-based predicate: whitespace
// runs collapse to the q-gram pad sequence and letters are upper-cased, so
// that the q-gram filter and the verification distance operate on the same
// text (§4.4; see DESIGN.md).
func editNormalize(s string, q int) string {
	fields := strings.FieldsFunc(s, unicode.IsSpace)
	sep := strings.Repeat(string(tokenize.PadRune), maxInt(q-1, 1))
	return strings.ToUpper(strings.Join(fields, sep))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sortedTokens returns the map's keys in sorted order. Score accumulation
// iterates tokens in this order so repeated Selects produce bit-identical
// results (map iteration order would otherwise reassociate float sums).
func sortedTokens[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for t := range m {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	return keys
}

// validate checks configuration invariants shared by all predicates.
func validate(records []core.Record, cfg core.Config) error {
	if cfg.Q < 1 {
		return fmt.Errorf("native: q-gram size must be ≥ 1, got %d", cfg.Q)
	}
	if cfg.WordQ < 1 {
		return fmt.Errorf("native: word q-gram size must be ≥ 1, got %d", cfg.WordQ)
	}
	if cfg.PruneRate < 0 || cfg.PruneRate >= 1 {
		return fmt.Errorf("native: prune rate must be in [0, 1), got %v", cfg.PruneRate)
	}
	seen := make(map[int]bool, len(records))
	for _, r := range records {
		if seen[r.TID] {
			return fmt.Errorf("native: duplicate TID %d in base relation", r.TID)
		}
		seen[r.TID] = true
	}
	return nil
}

// phases is the embeddable timing record for core.Phased.
type phases struct {
	tokDur time.Duration
	wDur   time.Duration
}

// PreprocessPhases returns the tokenization and weight-computation times.
func (p *phases) PreprocessPhases() (time.Duration, time.Duration) {
	return p.tokDur, p.wDur
}

// Build constructs the named predicate over the base relation. Names match
// core.PredicateNames.
func Build(name string, records []core.Record, cfg core.Config) (core.Predicate, error) {
	switch name {
	case "IntersectSize":
		return NewIntersectSize(records, cfg)
	case "Jaccard":
		return NewJaccard(records, cfg)
	case "WeightedMatch":
		return NewWeightedMatch(records, cfg)
	case "WeightedJaccard":
		return NewWeightedJaccard(records, cfg)
	case "Cosine":
		return NewCosine(records, cfg)
	case "BM25":
		return NewBM25(records, cfg)
	case "LM":
		return NewLM(records, cfg)
	case "HMM":
		return NewHMM(records, cfg)
	case "EditDistance":
		return NewEditDistance(records, cfg)
	case "GES":
		return NewGES(records, cfg)
	case "GESJaccard":
		return NewGESJaccard(records, cfg)
	case "GESapx":
		return NewGESapx(records, cfg)
	case "SoftTFIDF":
		return NewSoftTFIDF(records, cfg)
	default:
		return nil, fmt.Errorf("native: unknown predicate %q", name)
	}
}
