// Package native implements all thirteen similarity predicates of the
// benchmark as direct in-memory algorithms. These implementations serve two
// roles: they are the fast reference implementations exposed through the
// public API, and they act as differential-testing oracles for the
// declarative (SQL) realizations in package declarative — both must produce
// identical scores.
//
// Predicates are views over a shared core.Corpus: the corpus owns the
// tokenization products and the shared weight/posting tables, and attaching
// a predicate only wires those tables together (plus any parameter-dependent
// weights). Building all thirteen predicates over one corpus therefore
// performs exactly one tokenization/statistics pass. The legacy
// record-slice constructors build a private one-shot corpus materializing
// only the layers the predicate reads.
package native

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/tokenize"
)

// layerNeeds maps each benchmark predicate to the corpus layers it reads.
var layerNeeds = map[string]core.CorpusLayers{
	"IntersectSize":   core.LayerGrams | core.LayerPostings,
	"Jaccard":         core.LayerGrams | core.LayerPostings,
	"WeightedMatch":   core.LayerGrams | core.LayerPostings | core.LayerRS,
	"WeightedJaccard": core.LayerGrams | core.LayerPostings | core.LayerRS,
	"Cosine":          core.LayerGrams | core.LayerTFIDF,
	"BM25":            core.LayerGrams | core.LayerTokenIDs,
	"LM":              core.LayerGrams | core.LayerLM,
	"HMM":             core.LayerGrams | core.LayerTokenIDs,
	"EditDistance":    core.LayerGrams | core.LayerNorms,
	"GES":             core.LayerWords,
	"GESJaccard":      core.LayerWords | core.LayerWordGrams,
	"GESapx":          core.LayerWords | core.LayerWordGrams | core.LayerSigs,
	"SoftTFIDF":       core.LayerWords | core.LayerWordTFIDF,
}

// accumulator is the legacy per-query map accumulator. The hot path now
// runs on core.Scratch dense accumulators; the map form survives only in
// the predicates' selectNaive reference branches, which NaiveSelect exposes
// as the differential-testing oracle and the "old" side of
// BENCH_hotpath.json.
type accumulator map[int]float64

// matches converts accumulated scores into the ranked Match slice contract,
// applying any selection options: below-threshold scores are dropped before
// materialization and a limit switches the full sort to a k-bounded heap.
func (a accumulator) matches(records []core.Record, opts core.SelectOptions) []core.Match {
	out := make([]core.Match, 0, len(a))
	for idx, score := range a {
		if !opts.Keeps(score) {
			continue
		}
		out = append(out, core.Match{TID: records[idx].TID, Score: score})
	}
	return core.FinishMatches(out, opts)
}

// naiveSelector is implemented by every native predicate: selectNaive runs
// the pre-optimization merge (map accumulators, no pruning) over the same
// query plan, visiting contributions in the same order as the optimized
// path, so the two are bit-identical by construction.
type naiveSelector interface {
	selectNaive(query string, opts core.SelectOptions) ([]core.Match, error)
}

// NaiveSelect runs the reference (map-accumulator, unpruned) merge of a
// native predicate. It exists for differential testing and for the
// old-vs-new measurements of BENCH_hotpath.json; production callers use
// Select/SelectCtx, which run the dense score-at-a-time hot path.
func NaiveSelect(p core.Predicate, query string, opts core.SelectOptions) ([]core.Match, error) {
	ns, ok := p.(naiveSelector)
	if !ok {
		return nil, fmt.Errorf("native: %s has no naive reference path", p.Name())
	}
	return ns.selectNaive(query, opts)
}

// editNormalize prepares a string for the edit-based predicate: whitespace
// runs collapse to the q-gram pad sequence and letters are upper-cased, so
// that the q-gram filter and the verification distance operate on the same
// text (§4.4; see DESIGN.md).
func editNormalize(s string, q int) string {
	return tokenize.EditNormalize(s, q)
}

// sortedTokens returns the map's keys in sorted order. It is the pre-corpus
// deterministic iteration order; query paths now use the corpus's
// precomputed token rank instead (GramLayer.OrderedKnown), which sorts
// small ints rather than strings — BenchmarkQueryTokenOrder measures the
// per-Select win.
func sortedTokens[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for t := range m {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	return keys
}

// phases is the embeddable timing record for core.Phased.
type phases struct {
	tokDur time.Duration
	wDur   time.Duration
}

// PreprocessPhases returns the tokenization and weight-computation times.
// For corpus-attached predicates the tokenization phase is the shared
// corpus pass (reported identically by every attached predicate), and the
// weight phase covers the shared table assembly plus this predicate's
// attach cost.
func (p *phases) PreprocessPhases() (time.Duration, time.Duration) {
	return p.tokDur, p.wDur
}

func (p *phases) setPhases(tok, w time.Duration) { p.tokDur, p.wDur = tok, w }

type phaseSetter interface{ setPhases(tok, w time.Duration) }

// Build constructs the named predicate over a private one-shot corpus
// materializing only the layers the predicate reads. Names match
// core.PredicateNames.
func Build(name string, records []core.Record, cfg core.Config) (core.Predicate, error) {
	need, ok := layerNeeds[name]
	if !ok {
		return nil, fmt.Errorf("native: unknown predicate %q", name)
	}
	c, err := core.NewCorpus(records, cfg, need)
	if err != nil {
		return nil, err
	}
	return Attach(name, c, cfg)
}

// Attach builds the named predicate as a view over the corpus's current
// snapshot, sharing the corpus's precomputed token and weight tables
// instead of re-tokenizing the relation. The cfg may differ from the
// corpus configuration only in scoring-level parameters
// (Corpus.CompatibleConfig).
func Attach(name string, c *core.Corpus, cfg core.Config) (core.Predicate, error) {
	need, ok := layerNeeds[name]
	if !ok {
		return nil, fmt.Errorf("native: unknown predicate %q", name)
	}
	if !c.Layers().Has(need) {
		return nil, fmt.Errorf("native: corpus does not materialize the layers predicate %s reads", name)
	}
	if err := c.CompatibleConfig(cfg); err != nil {
		return nil, err
	}
	snap := c.Snapshot()
	t0 := time.Now()
	var p core.Predicate
	switch name {
	case "IntersectSize":
		p = attachIntersectSize(snap, cfg)
	case "Jaccard":
		p = attachJaccard(snap, cfg)
	case "WeightedMatch":
		p = attachWeightedMatch(snap, cfg)
	case "WeightedJaccard":
		p = attachWeightedJaccard(snap, cfg)
	case "Cosine":
		p = attachCosine(snap, cfg)
	case "BM25":
		p = attachBM25(snap, cfg)
	case "LM":
		p = attachLM(snap, cfg)
	case "HMM":
		p = attachHMM(snap, cfg)
	case "EditDistance":
		p = attachEditDistance(snap, cfg)
	case "GES":
		p = attachGES(snap, cfg)
	case "GESJaccard":
		p = attachGESJaccard(snap, cfg)
	case "GESapx":
		p = attachGESapx(snap, cfg)
	case "SoftTFIDF":
		p = attachSoftTFIDF(snap, cfg)
	}
	p.(phaseSetter).setPhases(snap.TokDur, snap.WeightDur+time.Since(t0))
	return p, nil
}
