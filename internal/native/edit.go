package native

import (
	"time"

	"repro/internal/core"
	"repro/internal/strutil"
	"repro/internal/tokenize"
)

// EditDistance is the edit-based predicate (§3.4/§4.4): records are ranked
// by edit similarity 1 − d/max(|Q|,|D|). Following Gravano et al. [11], a
// q-gram candidate filter (count + length filtering, no false negatives)
// narrows the base relation before exact verification with a banded
// dynamic program, when a similarity threshold θ is configured.
//
// Both the filter and the verified distance operate on the edit-normalized
// string (upper-cased, whitespace runs replaced by the q-gram pad sequence)
// so the filter's no-false-negative guarantee is exact for the similarity
// actually scored.
type EditDistance struct {
	phases
	td       *tokenData
	postings map[string][]wpost // w carries the record-side gram tf
	// posIndex maps gram → per-record sorted start positions, built when
	// the positional filter is enabled.
	posIndex   map[string][]posPost
	norm       []string // edit-normalized text per record
	grams      []int    // padded q-gram counts per record
	q          int
	theta      float64
	positional bool
}

// posPost is one positional posting: a record and the sorted positions at
// which the gram occurs in the record's padded normalized string.
type posPost struct {
	idx       int
	positions []int32
}

// NewEditDistance preprocesses the base relation for the edit predicate.
func NewEditDistance(records []core.Record, cfg core.Config) (*EditDistance, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	// The candidate filter must see unpruned grams: pruning would break the
	// no-false-negative guarantee, so the edit predicate ignores PruneRate
	// for its gram index (§5.6 notes pruning suits weighted predicates).
	td := buildTokenData(records, cfg.Q, 0)
	t1 := time.Now()
	p := &EditDistance{
		td:         td,
		q:          cfg.Q,
		theta:      cfg.EditTheta,
		positional: cfg.EditPositional,
		postings:   make(map[string][]wpost),
		norm:       make([]string, len(records)),
		grams:      make([]int, len(records)),
	}
	if p.positional {
		p.posIndex = make(map[string][]posPost)
	}
	for i, r := range records {
		p.norm[i] = editNormalize(r.Text, cfg.Q)
		p.grams[i] = td.dl[i]
		for t, tf := range td.counts[i] {
			p.postings[t] = append(p.postings[t], wpost{idx: i, w: float64(tf)})
		}
		if p.positional {
			for t, poss := range gramPositions(r.Text, cfg.Q) {
				p.posIndex[t] = append(p.posIndex[t], posPost{idx: i, positions: poss})
			}
		}
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// gramPositions returns, per gram, the sorted start positions within the
// padded normalized string.
func gramPositions(text string, q int) map[string][]int32 {
	grams := tokenize.QGrams(text, q)
	out := make(map[string][]int32)
	for i, g := range grams {
		out[g] = append(out[g], int32(i))
	}
	return out
}

// matchWithin counts the maximum number of one-to-one gram-occurrence pairs
// whose positions differ by at most k. Both position lists are sorted; the
// greedy two-pointer scan is optimal for interval constraints.
func matchWithin(a, b []int32, k int) int {
	matched := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := int(a[i]) - int(b[j])
		switch {
		case d > k:
			j++
		case -d > k:
			i++
		default:
			matched++
			i++
			j++
		}
	}
	return matched
}

// Name implements core.Predicate.
func (p *EditDistance) Name() string { return "EditDistance" }

// selectOpts ranks records by edit similarity. With a positive threshold the
// q-gram filter prunes candidates before verification; with θ = 0 the whole
// base relation is scored exactly (used by the accuracy study, which does
// not threshold rankings).
func (p *EditDistance) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qnorm := editNormalize(query, p.q)
	qlen := len([]rune(qnorm))
	acc := accumulator{}

	if p.theta <= 0 {
		for i := range p.norm {
			acc[i] = editSim(qnorm, qlen, p.norm[i])
		}
		return acc.matches(p.td, opts), nil
	}

	// Candidate generation: count matching grams. The positional variant
	// only counts occurrences whose positions are within the record's edit
	// budget (a strictly tighter, still false-negative-free filter); the
	// default counts multiset overlap.
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	qgrams := 0
	for _, tf := range qcounts {
		qgrams += tf
	}
	kFor := func(idx int) int {
		dlen := len([]rune(p.norm[idx]))
		maxLen := qlen
		if dlen > maxLen {
			maxLen = dlen
		}
		return int((1 - p.theta) * float64(maxLen))
	}
	common := map[int]int{}
	if p.positional {
		for t, qp := range gramPositions(query, p.q) {
			for _, post := range p.posIndex[t] {
				common[post.idx] += matchWithin(qp, post.positions, kFor(post.idx))
			}
		}
	} else {
		for t, qtf := range qcounts {
			for _, post := range p.postings[t] {
				m := int(post.w)
				if qtf < m {
					m = qtf
				}
				common[post.idx] += m
			}
		}
	}
	for idx, c := range common {
		dlen := len([]rune(p.norm[idx]))
		maxLen := qlen
		if dlen > maxLen {
			maxLen = dlen
		}
		if maxLen == 0 {
			acc[idx] = 1
			continue
		}
		k := int((1 - p.theta) * float64(maxLen))
		// Length filter.
		if abs(qlen-dlen) > k {
			continue
		}
		// Count filter: one edit operation destroys at most q grams of the
		// padded gram multiset.
		maxG := qgrams
		if p.grams[idx] > maxG {
			maxG = p.grams[idx]
		}
		if c < maxG-k*p.q {
			continue
		}
		d, ok := strutil.LevenshteinWithin(qnorm, p.norm[idx], k)
		if !ok {
			continue
		}
		sim := 1 - float64(d)/float64(maxLen)
		if sim >= p.theta {
			acc[idx] = sim
		}
	}
	return acc.matches(p.td, opts), nil
}

// editSim computes the edit similarity against a normalized record.
func editSim(qnorm string, qlen int, dnorm string) float64 {
	dlen := len([]rune(dnorm))
	maxLen := qlen
	if dlen > maxLen {
		maxLen = dlen
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(strutil.Levenshtein(qnorm, dnorm))/float64(maxLen)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
