package native

import (
	"repro/internal/core"
	"repro/internal/strutil"
	"repro/internal/tokenize"
)

// EditDistance is the edit-based predicate (§3.4/§4.4): records are ranked
// by edit similarity 1 − d/max(|Q|,|D|). Following Gravano et al. [11], a
// q-gram candidate filter (count + length filtering, no false negatives)
// narrows the base relation before exact verification with a banded
// dynamic program, when a similarity threshold θ is configured.
//
// Both the filter and the verified distance operate on the edit-normalized
// string (upper-cased, whitespace runs replaced by the q-gram pad sequence)
// so the filter's no-false-negative guarantee is exact for the similarity
// actually scored. The gram index reads the corpus's *unpruned* layer:
// IDF pruning would break the no-false-negative guarantee (§5.6 notes
// pruning suits weighted predicates).
type EditDistance struct {
	phases
	recs []core.Record
	raw  *core.GramLayer // unpruned layer: TFPost + rank lookups
	// posIndex maps gram → per-record sorted start positions, built when
	// the positional filter is enabled.
	posIndex   map[string][]posPost
	norm       []string // edit-normalized text per record
	grams      []int    // padded q-gram counts per record
	q          int
	theta      float64
	positional bool
}

// posPost is one positional posting: a record and the sorted positions at
// which the gram occurs in the record's padded normalized string.
type posPost struct {
	idx       int
	positions []int32
}

// NewEditDistance preprocesses the base relation for the edit predicate.
func NewEditDistance(records []core.Record, cfg core.Config) (*EditDistance, error) {
	p, err := Build("EditDistance", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*EditDistance), nil
}

func attachEditDistance(s *core.Snapshot, cfg core.Config) *EditDistance {
	raw := s.RawGrams
	p := &EditDistance{
		recs:       s.Records,
		raw:        raw,
		q:          cfg.Q,
		theta:      cfg.EditTheta,
		positional: cfg.EditPositional,
		norm:       s.Norms,
		grams:      raw.DL,
	}
	if p.positional {
		// The corpus's gram slice is in occurrence order, so position j of
		// Docs[i] is the j-th gram start — no re-tokenization needed.
		p.posIndex = make(map[string][]posPost)
		for i := range raw.Docs {
			for j, g := range raw.Docs[i] {
				refs := p.posIndex[g]
				if n := len(refs); n > 0 && refs[n-1].idx == i {
					refs[n-1].positions = append(refs[n-1].positions, int32(j))
				} else {
					p.posIndex[g] = append(refs, posPost{idx: i, positions: []int32{int32(j)}})
				}
			}
		}
	}
	return p
}

// gramPositions returns, per gram, the sorted start positions within the
// padded normalized string.
func gramPositions(text string, q int) map[string][]int32 {
	grams := tokenize.QGrams(text, q)
	out := make(map[string][]int32)
	for i, g := range grams {
		out[g] = append(out[g], int32(i))
	}
	return out
}

// matchWithin counts the maximum number of one-to-one gram-occurrence pairs
// whose positions differ by at most k. Both position lists are sorted; the
// greedy two-pointer scan is optimal for interval constraints.
func matchWithin(a, b []int32, k int) int {
	matched := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := int(a[i]) - int(b[j])
		switch {
		case d > k:
			j++
		case -d > k:
			i++
		default:
			matched++
			i++
			j++
		}
	}
	return matched
}

// Name implements core.Predicate.
func (p *EditDistance) Name() string { return "EditDistance" }

// selectOpts ranks records by edit similarity. With a positive threshold the
// q-gram filter prunes candidates before verification; with θ = 0 the whole
// base relation is scored exactly (used by the accuracy study, which does
// not threshold rankings). Candidate gram counts accumulate in a pooled
// dense scratch instead of a per-query map, and verified matches
// materialize straight into the result slice.
func (p *EditDistance) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qnorm := editNormalize(query, p.q)
	qlen := len([]rune(qnorm))

	if p.theta <= 0 {
		out := make([]core.Match, 0, len(p.recs))
		for i := range p.norm {
			sim := editSim(qnorm, qlen, p.norm[i])
			if !opts.Keeps(sim) {
				continue
			}
			out = append(out, core.Match{TID: p.recs[i].TID, Score: sim})
		}
		return core.FinishMatches(out, opts), nil
	}

	// Candidate generation: count matching grams. The positional variant
	// only counts occurrences whose positions are within the record's edit
	// budget (a strictly tighter, still false-negative-free filter); the
	// default counts multiset overlap.
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	qgrams := 0
	for _, tf := range qcounts {
		qgrams += tf
	}
	kFor := func(idx int) int {
		dlen := len([]rune(p.norm[idx]))
		maxLen := qlen
		if dlen > maxLen {
			maxLen = dlen
		}
		return int((1 - p.theta) * float64(maxLen))
	}
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	if p.positional {
		for t, qp := range gramPositions(query, p.q) {
			for _, post := range p.posIndex[t] {
				s.Add(int32(post.idx), float64(matchWithin(qp, post.positions, kFor(post.idx))))
			}
		}
	} else {
		for t, qtf := range qcounts {
			r, ok := p.raw.Rank(t)
			if !ok {
				continue
			}
			for _, post := range p.raw.TFPost[r] {
				m := int(post.W)
				if qtf < m {
					m = qtf
				}
				s.Add(int32(post.Rec), float64(m))
			}
		}
	}
	out := make([]core.Match, 0, len(s.Touched()))
	for _, rec := range s.Touched() {
		idx := int(rec)
		c := int(s.Val(rec))
		sim, ok := p.verify(qnorm, qlen, qgrams, idx, c)
		if !ok || !opts.Keeps(sim) {
			continue
		}
		out = append(out, core.Match{TID: p.recs[idx].TID, Score: sim})
	}
	return core.FinishMatches(out, opts), nil
}

// verify applies the length and count filters to one candidate and, when
// they pass, the banded dynamic program. ok reports whether the record
// survives with edit similarity ≥ θ.
func (p *EditDistance) verify(qnorm string, qlen, qgrams, idx, c int) (float64, bool) {
	dlen := len([]rune(p.norm[idx]))
	maxLen := qlen
	if dlen > maxLen {
		maxLen = dlen
	}
	if maxLen == 0 {
		return 1, true
	}
	k := int((1 - p.theta) * float64(maxLen))
	// Length filter.
	if abs(qlen-dlen) > k {
		return 0, false
	}
	// Count filter: one edit operation destroys at most q grams of the
	// padded gram multiset.
	maxG := qgrams
	if p.grams[idx] > maxG {
		maxG = p.grams[idx]
	}
	if c < maxG-k*p.q {
		return 0, false
	}
	d, ok := strutil.LevenshteinWithin(qnorm, p.norm[idx], k)
	if !ok {
		return 0, false
	}
	sim := 1 - float64(d)/float64(maxLen)
	return sim, sim >= p.theta
}

// selectNaive is the pre-optimization merge: per-query map accumulators,
// identical filters and verification.
func (p *EditDistance) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	qnorm := editNormalize(query, p.q)
	qlen := len([]rune(qnorm))
	acc := accumulator{}

	if p.theta <= 0 {
		for i := range p.norm {
			acc[i] = editSim(qnorm, qlen, p.norm[i])
		}
		return acc.matches(p.recs, opts), nil
	}

	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	qgrams := 0
	for _, tf := range qcounts {
		qgrams += tf
	}
	kFor := func(idx int) int {
		dlen := len([]rune(p.norm[idx]))
		maxLen := qlen
		if dlen > maxLen {
			maxLen = dlen
		}
		return int((1 - p.theta) * float64(maxLen))
	}
	common := map[int]int{}
	if p.positional {
		for t, qp := range gramPositions(query, p.q) {
			for _, post := range p.posIndex[t] {
				common[post.idx] += matchWithin(qp, post.positions, kFor(post.idx))
			}
		}
	} else {
		for t, qtf := range qcounts {
			r, ok := p.raw.Rank(t)
			if !ok {
				continue
			}
			for _, post := range p.raw.TFPost[r] {
				m := int(post.W)
				if qtf < m {
					m = qtf
				}
				common[post.Rec] += m
			}
		}
	}
	for idx, c := range common {
		if sim, ok := p.verify(qnorm, qlen, qgrams, idx, c); ok {
			acc[idx] = sim
		}
	}
	return acc.matches(p.recs, opts), nil
}

// editSim computes the edit similarity against a normalized record.
func editSim(qnorm string, qlen int, dnorm string) float64 {
	dlen := len([]rune(dnorm))
	maxLen := qlen
	if dlen > maxLen {
		maxLen = dlen
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(strutil.Levenshtein(qnorm, dnorm))/float64(maxLen)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
