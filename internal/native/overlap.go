package native

import (
	"time"

	"repro/internal/core"
	"repro/internal/tokenize"
)

// The overlap predicates (§3.1, Appendix B.1) operate on the *sets* of
// q-gram tokens of query and record: duplicates are collapsed, mirroring the
// distinct-token tables the declarative framework stores for this class
// (§5.5.1 notes the "small difference which is due to storing distinct
// tokens only").

// IntersectSize is sim(Q,D) = |Q ∩ D| (Eq. 3.1).
type IntersectSize struct {
	phases
	td       *tokenData
	postings map[string][]int
	q        int
}

// NewIntersectSize preprocesses the base relation for IntersectSize.
func NewIntersectSize(records []core.Record, cfg core.Config) (*IntersectSize, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &IntersectSize{td: td, q: cfg.Q, postings: distinctPostings(td)}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// distinctPostings maps each token to the records containing it.
func distinctPostings(td *tokenData) map[string][]int {
	postings := make(map[string][]int)
	for i, counts := range td.counts {
		for t := range counts {
			postings[t] = append(postings[t], i)
		}
	}
	return postings
}

// Name implements core.Predicate.
func (p *IntersectSize) Name() string { return "IntersectSize" }

// selectOpts ranks records by the number of distinct shared tokens.
func (p *IntersectSize) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	acc := accumulator{}
	for t := range tokenize.Counts(tokenize.QGrams(query, p.q)) {
		for _, idx := range p.postings[t] {
			acc[idx]++
		}
	}
	return acc.matches(p.td, opts), nil
}

// Jaccard is sim(Q,D) = |Q ∩ D| / |Q ∪ D| (Eq. 3.2).
type Jaccard struct {
	phases
	td       *tokenData
	postings map[string][]int
	setLen   []int // distinct token count per record
	q        int
}

// NewJaccard preprocesses the base relation for the Jaccard coefficient.
func NewJaccard(records []core.Record, cfg core.Config) (*Jaccard, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &Jaccard{td: td, q: cfg.Q, postings: distinctPostings(td)}
	p.setLen = make([]int, len(td.counts))
	for i, counts := range td.counts {
		p.setLen[i] = len(counts)
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *Jaccard) Name() string { return "Jaccard" }

// selectOpts ranks records by Jaccard coefficient over distinct tokens. The
// query length counts all distinct query tokens, matching the declarative
// plan's COUNT(*) over QUERY_TOKENS.
func (p *Jaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	inter := map[int]int{}
	for t := range qset {
		for _, idx := range p.postings[t] {
			inter[idx]++
		}
	}
	acc := accumulator{}
	qlen := len(qset)
	for idx, common := range inter {
		acc[idx] = float64(common) / float64(p.setLen[idx]+qlen-common)
	}
	return acc.matches(p.td, opts), nil
}

// WeightedMatch is Σ_{t∈Q∩D} w(t) with Robertson–Sparck Jones weights
// (§3.1, §5.3.1).
type WeightedMatch struct {
	phases
	td       *tokenData
	postings map[string][]int
	rs       map[string]float64
	q        int
}

// NewWeightedMatch preprocesses the base relation for WeightedMatch.
func NewWeightedMatch(records []core.Record, cfg core.Config) (*WeightedMatch, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &WeightedMatch{td: td, q: cfg.Q, postings: distinctPostings(td), rs: rsTable(td)}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// rsTable precomputes RS weights for every known token.
func rsTable(td *tokenData) map[string]float64 {
	rs := make(map[string]float64)
	for _, counts := range td.counts {
		for t := range counts {
			if _, ok := rs[t]; !ok {
				rs[t] = td.corpus.RS(t)
			}
		}
	}
	return rs
}

// Name implements core.Predicate.
func (p *WeightedMatch) Name() string { return "WeightedMatch" }

// selectOpts ranks records by the summed RS weight of shared distinct tokens.
func (p *WeightedMatch) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	acc := accumulator{}
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	for _, t := range sortedTokens(qset) {
		w, ok := p.rs[t]
		if !ok {
			continue
		}
		for _, idx := range p.postings[t] {
			acc[idx] += w
		}
	}
	return acc.matches(p.td, opts), nil
}

// WeightedJaccard divides the weight of the intersection by the weight of
// the union, both under RS weights (§3.1).
type WeightedJaccard struct {
	phases
	td       *tokenData
	postings map[string][]int
	rs       map[string]float64
	wlen     []float64 // summed weight of each record's distinct tokens
	q        int
}

// NewWeightedJaccard preprocesses the base relation for WeightedJaccard.
func NewWeightedJaccard(records []core.Record, cfg core.Config) (*WeightedJaccard, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &WeightedJaccard{td: td, q: cfg.Q, postings: distinctPostings(td), rs: rsTable(td)}
	p.wlen = make([]float64, len(td.counts))
	for i, counts := range td.counts {
		for t := range counts {
			p.wlen[i] += p.rs[t]
		}
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *WeightedJaccard) Name() string { return "WeightedJaccard" }

// selectOpts ranks records by weighted Jaccard. Query token weights come from
// the base relation's weight table, so unseen query tokens contribute
// nothing to the union weight (join semantics of the declarative plan).
func (p *WeightedJaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	qlen := 0.0
	for _, t := range sortedTokens(qset) {
		if w, ok := p.rs[t]; ok {
			qlen += w
		}
	}
	inter := map[int]float64{}
	for _, t := range sortedTokens(qset) {
		w, ok := p.rs[t]
		if !ok {
			continue
		}
		for _, idx := range p.postings[t] {
			inter[idx] += w
		}
	}
	acc := accumulator{}
	for idx, common := range inter {
		den := p.wlen[idx] + qlen - common
		if den == 0 {
			continue
		}
		acc[idx] = common / den
	}
	return acc.matches(p.td, opts), nil
}
