package native

import (
	"repro/internal/core"
	"repro/internal/tokenize"
)

// The overlap predicates (§3.1, Appendix B.1) operate on the *sets* of
// q-gram tokens of query and record: duplicates are collapsed, mirroring the
// distinct-token tables the declarative framework stores for this class
// (§5.5.1 notes the "small difference which is due to storing distinct
// tokens only"). All four share the corpus's distinct-token inverted index
// (core.LayerPostings) — the single TOKENS table of the paper's framework.

// IntersectSize is sim(Q,D) = |Q ∩ D| (Eq. 3.1).
type IntersectSize struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewIntersectSize preprocesses the base relation for IntersectSize.
func NewIntersectSize(records []core.Record, cfg core.Config) (*IntersectSize, error) {
	p, err := Build("IntersectSize", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*IntersectSize), nil
}

func attachIntersectSize(s *core.Snapshot, cfg core.Config) *IntersectSize {
	return &IntersectSize{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *IntersectSize) Name() string { return "IntersectSize" }

// selectOpts ranks records by the number of distinct shared tokens.
func (p *IntersectSize) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	acc := accumulator{}
	for t := range tokenize.Counts(tokenize.QGrams(query, p.q)) {
		r, ok := p.g.Rank(t)
		if !ok {
			continue
		}
		for _, idx := range p.g.Postings[r] {
			acc[int(idx)]++
		}
	}
	return acc.matches(p.recs, opts), nil
}

// Jaccard is sim(Q,D) = |Q ∩ D| / |Q ∪ D| (Eq. 3.2).
type Jaccard struct {
	phases
	recs   []core.Record
	g      *core.GramLayer
	setLen []int // distinct token count per record
	q      int
}

// NewJaccard preprocesses the base relation for the Jaccard coefficient.
func NewJaccard(records []core.Record, cfg core.Config) (*Jaccard, error) {
	p, err := Build("Jaccard", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*Jaccard), nil
}

func attachJaccard(s *core.Snapshot, cfg core.Config) *Jaccard {
	p := &Jaccard{recs: s.Records, g: s.Grams, q: cfg.Q}
	p.setLen = make([]int, len(s.Grams.Counts))
	for i, counts := range s.Grams.Counts {
		p.setLen[i] = len(counts)
	}
	return p
}

// Name implements core.Predicate.
func (p *Jaccard) Name() string { return "Jaccard" }

// selectOpts ranks records by Jaccard coefficient over distinct tokens. The
// query length counts all distinct query tokens, matching the declarative
// plan's COUNT(*) over QUERY_TOKENS.
func (p *Jaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	inter := map[int]int{}
	for t := range qset {
		r, ok := p.g.Rank(t)
		if !ok {
			continue
		}
		for _, idx := range p.g.Postings[r] {
			inter[int(idx)]++
		}
	}
	acc := accumulator{}
	qlen := len(qset)
	for idx, common := range inter {
		acc[idx] = float64(common) / float64(p.setLen[idx]+qlen-common)
	}
	return acc.matches(p.recs, opts), nil
}

// WeightedMatch is Σ_{t∈Q∩D} w(t) with Robertson–Sparck Jones weights
// (§3.1, §5.3.1). The RS weight table is shared corpus state
// (core.LayerRS), not per-predicate.
type WeightedMatch struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewWeightedMatch preprocesses the base relation for WeightedMatch.
func NewWeightedMatch(records []core.Record, cfg core.Config) (*WeightedMatch, error) {
	p, err := Build("WeightedMatch", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*WeightedMatch), nil
}

func attachWeightedMatch(s *core.Snapshot, cfg core.Config) *WeightedMatch {
	return &WeightedMatch{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *WeightedMatch) Name() string { return "WeightedMatch" }

// selectOpts ranks records by the summed RS weight of shared distinct tokens.
func (p *WeightedMatch) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	acc := accumulator{}
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	for _, rt := range p.g.OrderedKnownRanks(qset) {
		w := p.g.RSByRank[rt.Rank]
		for _, idx := range p.g.Postings[rt.Rank] {
			acc[int(idx)] += w
		}
	}
	return acc.matches(p.recs, opts), nil
}

// WeightedJaccard divides the weight of the intersection by the weight of
// the union, both under RS weights (§3.1).
type WeightedJaccard struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewWeightedJaccard preprocesses the base relation for WeightedJaccard.
func NewWeightedJaccard(records []core.Record, cfg core.Config) (*WeightedJaccard, error) {
	p, err := Build("WeightedJaccard", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*WeightedJaccard), nil
}

func attachWeightedJaccard(s *core.Snapshot, cfg core.Config) *WeightedJaccard {
	// The union denominator Σ RS over each record's distinct tokens is the
	// corpus's RSLen column — shared state, nothing to build here.
	return &WeightedJaccard{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *WeightedJaccard) Name() string { return "WeightedJaccard" }

// selectOpts ranks records by weighted Jaccard. Query token weights come from
// the base relation's weight table, so unseen query tokens contribute
// nothing to the union weight (join semantics of the declarative plan).
func (p *WeightedJaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	known := p.g.OrderedKnownRanks(qset)
	qlen := 0.0
	for _, rt := range known {
		qlen += p.g.RSByRank[rt.Rank]
	}
	inter := map[int]float64{}
	for _, rt := range known {
		w := p.g.RSByRank[rt.Rank]
		for _, idx := range p.g.Postings[rt.Rank] {
			inter[int(idx)] += w
		}
	}
	acc := accumulator{}
	for idx, common := range inter {
		den := p.g.RSLen[idx] + qlen - common
		if den == 0 {
			continue
		}
		acc[idx] = common / den
	}
	return acc.matches(p.recs, opts), nil
}
