package native

import (
	"repro/internal/core"
	"repro/internal/tokenize"
)

// The overlap predicates (§3.1, Appendix B.1) operate on the *sets* of
// q-gram tokens of query and record: duplicates are collapsed, mirroring the
// distinct-token tables the declarative framework stores for this class
// (§5.5.1 notes the "small difference which is due to storing distinct
// tokens only"). All four share the corpus's distinct-token inverted index
// (core.LayerPostings) — the single TOKENS table of the paper's framework —
// and run on the score-at-a-time engine: each posting list's bound is its
// uniform weight (1 for the unweighted pair, RSByRank for the weighted
// pair), the "list length bound" of this class.

// IntersectSize is sim(Q,D) = |Q ∩ D| (Eq. 3.1).
type IntersectSize struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewIntersectSize preprocesses the base relation for IntersectSize.
func NewIntersectSize(records []core.Record, cfg core.Config) (*IntersectSize, error) {
	p, err := Build("IntersectSize", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*IntersectSize), nil
}

func attachIntersectSize(s *core.Snapshot, cfg core.Config) *IntersectSize {
	return &IntersectSize{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *IntersectSize) Name() string { return "IntersectSize" }

// plan: one unit-weight term per known distinct query token. Every list
// bounds a record's gain by exactly 1, so with a limit pushed down the
// engine stops admitting candidates once the remaining list count cannot
// beat the current top-k floor.
func (p *IntersectSize) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRanks(qset) {
		terms = append(terms, core.Term{Q: 1, Ids: p.g.Postings[rt.Rank]})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{}
}

// selectOpts ranks records by the number of distinct shared tokens.
func (p *IntersectSize) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *IntersectSize) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}

// Jaccard is sim(Q,D) = |Q ∩ D| / |Q ∪ D| (Eq. 3.2).
type Jaccard struct {
	phases
	recs   []core.Record
	g      *core.GramLayer
	setLen []float64 // distinct token count per record (the ratio denominator)
	minLen float64
	q      int
}

// NewJaccard preprocesses the base relation for the Jaccard coefficient.
func NewJaccard(records []core.Record, cfg core.Config) (*Jaccard, error) {
	p, err := Build("Jaccard", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*Jaccard), nil
}

func attachJaccard(s *core.Snapshot, cfg core.Config) *Jaccard {
	p := &Jaccard{recs: s.Records, g: s.Grams, q: cfg.Q}
	p.setLen = make([]float64, len(s.Grams.Counts))
	for i, counts := range s.Grams.Counts {
		p.setLen[i] = float64(len(counts))
		if i == 0 || p.setLen[i] < p.minLen {
			p.minLen = p.setLen[i]
		}
	}
	return p
}

// Name implements core.Predicate.
func (p *Jaccard) Name() string { return "Jaccard" }

// plan: unit-weight terms with the ratio shape — the engine accumulates
// the intersection size and divides by |Q ∪ D| per touched record in one
// pass (the former two-pass inter-map-then-score merge, folded). The query
// length counts all distinct query tokens, matching the declarative plan's
// COUNT(*) over QUERY_TOKENS.
func (p *Jaccard) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRanks(qset) {
		terms = append(terms, core.Term{Q: 1, Ids: p.g.Postings[rt.Rank]})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{
		Den:           p.setLen,
		DenMin:        p.minLen,
		DenAtLeastAcc: true, // |D| ≥ |Q ∩ D| always
		QSide:         float64(len(qset)),
	}
}

// selectOpts ranks records by Jaccard coefficient over distinct tokens.
func (p *Jaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *Jaccard) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}

// WeightedMatch is Σ_{t∈Q∩D} w(t) with Robertson–Sparck Jones weights
// (§3.1, §5.3.1). The RS weight table is shared corpus state
// (core.LayerRS), not per-predicate.
type WeightedMatch struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewWeightedMatch preprocesses the base relation for WeightedMatch.
func NewWeightedMatch(records []core.Record, cfg core.Config) (*WeightedMatch, error) {
	p, err := Build("WeightedMatch", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*WeightedMatch), nil
}

func attachWeightedMatch(s *core.Snapshot, cfg core.Config) *WeightedMatch {
	return &WeightedMatch{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *WeightedMatch) Name() string { return "WeightedMatch" }

// plan: each list carries the uniform RS weight of its token, which is its
// own exact score bound (RS can be negative for tokens in more than half
// the records; the engine's negative-suffix bound covers that).
func (p *WeightedMatch) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRanks(qset) {
		terms = append(terms, core.Term{Q: p.g.RSByRank[rt.Rank], Ids: p.g.Postings[rt.Rank]})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{}
}

// selectOpts ranks records by the summed RS weight of shared distinct tokens.
func (p *WeightedMatch) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *WeightedMatch) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}

// WeightedJaccard divides the weight of the intersection by the weight of
// the union, both under RS weights (§3.1).
type WeightedJaccard struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewWeightedJaccard preprocesses the base relation for WeightedJaccard.
func NewWeightedJaccard(records []core.Record, cfg core.Config) (*WeightedJaccard, error) {
	p, err := Build("WeightedJaccard", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*WeightedJaccard), nil
}

func attachWeightedJaccard(s *core.Snapshot, cfg core.Config) *WeightedJaccard {
	// The union denominator Σ RS over each record's distinct tokens is the
	// corpus's RSLen column — shared state, nothing to build here.
	return &WeightedJaccard{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *WeightedJaccard) Name() string { return "WeightedJaccard" }

// plan: RS-weighted terms with the ratio shape over the shared RSLen
// column — the former inter-map pass and the scoring pass fold into one
// accumulation. Query token weights come from the base relation's weight
// table, so unseen query tokens contribute nothing to the union weight
// (join semantics of the declarative plan). The query-side union weight is
// summed in ascending token-rank order before impact ordering, preserving
// the exact float of the previous implementation.
func (p *WeightedJaccard) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qset := tokenize.Counts(tokenize.QGrams(query, p.q))
	known := p.g.OrderedKnownRanks(qset)
	qlen := 0.0
	terms := s.TermBuf()
	for _, rt := range known {
		w := p.g.RSByRank[rt.Rank]
		qlen += w
		terms = append(terms, core.Term{Q: w, Ids: p.g.Postings[rt.Rank]})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{
		Den:    p.g.RSLen,
		DenMin: p.g.RSLenMin,
		QSide:  qlen,
	}
}

// selectOpts ranks records by weighted Jaccard.
func (p *WeightedJaccard) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *WeightedJaccard) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}
