package native

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentSelect verifies that native predicates are safe for
// concurrent Select calls once constructed (they are read-only after
// preprocessing). Run with -race to catch violations.
func TestConcurrentSelect(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EditTheta = 0.6
	queries := []string{
		"Morgan Stanley Group Inc.",
		"AT&T Incorporated",
		"Beijing Hotel",
		"Stanley Morgn Gruop",
	}
	for _, name := range core.PredicateNames {
		p, err := Build(name, companyRecords, cfg)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		// Reference results computed sequentially.
		want := make([][]core.Match, len(queries))
		for i, q := range queries {
			want[i], err = p.Select(q)
			if err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errs := make(chan error, 4*len(queries))
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, q := range queries {
					ms, err := p.Select(q)
					if err != nil {
						errs <- err
						return
					}
					if len(ms) != len(want[i]) {
						errs <- errMismatch(name, q, len(ms), len(want[i]))
						return
					}
					for j := range ms {
						if ms[j] != want[i][j] {
							errs <- errMismatch(name, q, j, j)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("%s: %v", name, err)
		}
	}
}

type mismatchError struct {
	pred, query string
	got, want   int
}

func (e mismatchError) Error() string {
	return e.pred + " concurrent Select mismatch on " + e.query
}

func errMismatch(pred, query string, got, want int) error {
	return mismatchError{pred: pred, query: query, got: got, want: want}
}
