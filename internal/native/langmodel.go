package native

import (
	"math"

	"repro/internal/core"
	"repro/internal/tokenize"
)

// The language modeling predicates (§3.3, Appendix B.3) are the
// probabilistic predicates the paper introduces for data cleaning.

// LM is the Ponte–Croft language modeling predicate, scored with the
// algebraically rewritten Eq. 4.4 so that only tokens shared by query and
// record (plus one precomputed per-record term) participate. Its posting
// table (the BASE_PM join of the declarative plan) is parameter-free and
// lives on the shared corpus (core.LayerLM).
type LM struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewLM preprocesses the base relation for the language modeling predicate.
func NewLM(records []core.Record, cfg core.Config) (*LM, error) {
	p, err := Build("LM", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*LM), nil
}

func attachLM(s *core.Snapshot, cfg core.Config) *LM {
	return &LM{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *LM) Name() string { return "LM" }

// selectOpts ranks records by p̂(Q|M_D) (Eq. 4.4). Each query token occurrence
// contributes its per-match log term, matching the declarative join of
// BASE_PM with the query token multiset.
func (p *LM) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	acc := accumulator{}
	matched := map[int]bool{}
	for _, rt := range p.g.OrderedKnownRanks(qcounts) {
		tf := qcounts[rt.Tok]
		for _, post := range p.g.LMPost[rt.Rank] {
			acc[post.Rec] += float64(tf) * post.W
			matched[post.Rec] = true
		}
	}
	for idx := range matched {
		acc[idx] = math.Exp(acc[idx] + p.g.LMSumComp[idx])
	}
	return acc.matches(p.recs, opts), nil
}

// HMM is the two-state Hidden Markov Model predicate: the similarity is the
// product, over query token occurrences matched in the record, of
// 1 + a1·P(t|D)/(a0·P(t|GE)) (rewritten Eq. 4.6). The weights depend on the
// a0 parameter, so they are computed at attach time from the shared corpus
// statistics.
type HMM struct {
	phases
	recs     []core.Record
	g        *core.GramLayer
	postings [][]core.WPost // indexed by token rank; W = log weight
	q        int
}

// NewHMM preprocesses the base relation for the HMM predicate.
func NewHMM(records []core.Record, cfg core.Config) (*HMM, error) {
	p, err := Build("HMM", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*HMM), nil
}

func attachHMM(s *core.Snapshot, cfg core.Config) *HMM {
	g := s.Grams
	p := &HMM{recs: s.Records, g: g, q: cfg.Q, postings: g.RankTable()}
	// P(t|GE) = cf/cs is per token, not per posting.
	cfcs := make([]float64, len(g.TokenByRank))
	for r, t := range g.TokenByRank {
		cfcs[r] = g.Stats.CFCS(t)
	}
	a0 := cfg.HMMA0
	a1 := 1 - a0
	for i, pairs := range g.Pairs {
		dl := float64(g.DL[i])
		if dl == 0 {
			continue
		}
		for _, pr := range pairs {
			ptge := cfcs[pr.Rank]
			if ptge == 0 {
				continue
			}
			pml := float64(pr.TF) / dl
			w := 1 + a1*pml/(a0*ptge)
			p.postings[pr.Rank] = append(p.postings[pr.Rank], core.WPost{Rec: i, W: math.Log(w)})
		}
	}
	return p
}

// Name implements core.Predicate.
func (p *HMM) Name() string { return "HMM" }

// selectOpts ranks records by the rewritten HMM score.
func (p *HMM) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	acc := accumulator{}
	for _, rt := range p.g.OrderedKnownRanks(qcounts) {
		tf := qcounts[rt.Tok]
		for _, post := range p.postings[rt.Rank] {
			acc[post.Rec] += float64(tf) * post.W
		}
	}
	for idx, logScore := range acc {
		acc[idx] = math.Exp(logScore)
	}
	return acc.matches(p.recs, opts), nil
}
