package native

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/tokenize"
)

// The language modeling predicates (§3.3, Appendix B.3) are the
// probabilistic predicates the paper introduces for data cleaning.

// LM is the Ponte–Croft language modeling predicate, scored with the
// algebraically rewritten Eq. 4.4 so that only tokens shared by query and
// record (plus one precomputed per-record term) participate.
type LM struct {
	phases
	td *tokenData
	// postings carry, per (token, record), the combined per-match log term
	// log pm − log(1−pm) − log(cf/cs).
	postings map[string][]wpost
	sumComp  []float64 // Σ_{t∈D} log(1−pm), the BASE_SUMCOMPMBASE term
	q        int
}

// NewLM preprocesses the base relation for the language modeling predicate.
func NewLM(records []core.Record, cfg core.Config) (*LM, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &LM{
		td:       td,
		q:        cfg.Q,
		postings: make(map[string][]wpost),
		sumComp:  make([]float64, len(td.counts)),
	}
	for i, counts := range td.counts {
		rec := td.corpus.LM(counts, td.dl[i])
		p.sumComp[i] = rec.SumCompLog
		for t, pm := range rec.PM {
			term := math.Log(pm) - math.Log(1.0-pm) - math.Log(td.corpus.CFCS(t))
			p.postings[t] = append(p.postings[t], wpost{idx: i, w: term})
		}
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *LM) Name() string { return "LM" }

// selectOpts ranks records by p̂(Q|M_D) (Eq. 4.4). Each query token occurrence
// contributes its per-match log term, matching the declarative join of
// BASE_PM with the query token multiset.
func (p *LM) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	acc := accumulator{}
	matched := map[int]bool{}
	for _, t := range sortedTokens(qcounts) {
		tf := qcounts[t]
		for _, post := range p.postings[t] {
			acc[post.idx] += float64(tf) * post.w
			matched[post.idx] = true
		}
	}
	for idx := range matched {
		acc[idx] = math.Exp(acc[idx] + p.sumComp[idx])
	}
	return acc.matches(p.td, opts), nil
}

// HMM is the two-state Hidden Markov Model predicate: the similarity is the
// product, over query token occurrences matched in the record, of
// 1 + a1·P(t|D)/(a0·P(t|GE)) (rewritten Eq. 4.6).
type HMM struct {
	phases
	td       *tokenData
	postings map[string][]wpost // w = log weight
	q        int
}

// NewHMM preprocesses the base relation for the HMM predicate.
func NewHMM(records []core.Record, cfg core.Config) (*HMM, error) {
	if err := validate(records, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	td := buildTokenData(records, cfg.Q, cfg.PruneRate)
	t1 := time.Now()
	p := &HMM{td: td, q: cfg.Q, postings: make(map[string][]wpost)}
	for i, counts := range td.counts {
		for t, w := range td.corpus.HMM(counts, td.dl[i], cfg.HMMA0) {
			p.postings[t] = append(p.postings[t], wpost{idx: i, w: math.Log(w)})
		}
	}
	p.tokDur, p.wDur = t1.Sub(t0), time.Since(t1)
	return p, nil
}

// Name implements core.Predicate.
func (p *HMM) Name() string { return "HMM" }

// selectOpts ranks records by the rewritten HMM score.
func (p *HMM) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	acc := accumulator{}
	for _, t := range sortedTokens(qcounts) {
		tf := qcounts[t]
		for _, post := range p.postings[t] {
			acc[post.idx] += float64(tf) * post.w
		}
	}
	for idx, logScore := range acc {
		acc[idx] = math.Exp(logScore)
	}
	return acc.matches(p.td, opts), nil
}
