package native

import (
	"math"

	"repro/internal/core"
	"repro/internal/tokenize"
)

// The language modeling predicates (§3.3, Appendix B.3) are the
// probabilistic predicates the paper introduces for data cleaning.

// LM is the Ponte–Croft language modeling predicate, scored with the
// algebraically rewritten Eq. 4.4 so that only tokens shared by query and
// record (plus one precomputed per-record term) participate. Its posting
// table (the BASE_PM join of the declarative plan) is parameter-free and
// lives on the shared corpus (core.LayerLM).
type LM struct {
	phases
	recs []core.Record
	g    *core.GramLayer
	q    int
}

// NewLM preprocesses the base relation for the language modeling predicate.
func NewLM(records []core.Record, cfg core.Config) (*LM, error) {
	p, err := Build("LM", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*LM), nil
}

func attachLM(s *core.Snapshot, cfg core.Config) *LM {
	return &LM{recs: s.Records, g: s.Grams, q: cfg.Q}
}

// Name implements core.Predicate.
func (p *LM) Name() string { return "LM" }

// plan assembles the rewritten Eq. 4.4 terms: each query token occurrence
// contributes its per-match log term (which can be negative, bounded by
// the shared LMMax/LMMin columns), and the per-record Σ log(1−pm) column
// enters as the shape's additive offset under exp.
func (p *LM) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRanks(qcounts) {
		terms = append(terms, core.Term{
			Q:    float64(qcounts[rt.Tok]),
			W:    p.g.LMPost[rt.Rank],
			MaxW: p.g.LMMax[rt.Rank],
			MinW: p.g.LMMin[rt.Rank],
		})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{
		Comp:    p.g.LMSumComp,
		CompMax: p.g.LMCompMax,
		Exp:     true,
	}
}

// selectOpts ranks records by p̂(Q|M_D) (Eq. 4.4), matching the declarative
// join of BASE_PM with the query token multiset.
func (p *LM) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *LM) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}

// HMM is the two-state Hidden Markov Model predicate: the similarity is the
// product, over query token occurrences matched in the record, of
// 1 + a1·P(t|D)/(a0·P(t|GE)) (rewritten Eq. 4.6). The weights depend on the
// a0 parameter, so they are computed at attach time from the shared corpus
// statistics.
type HMM struct {
	phases
	recs       []core.Record
	g          *core.GramLayer
	postings   [][]core.WPost // indexed by token rank; W = log weight
	maxW, minW []float64      // per-rank posting weight bounds
	q          int
}

// NewHMM preprocesses the base relation for the HMM predicate.
func NewHMM(records []core.Record, cfg core.Config) (*HMM, error) {
	p, err := Build("HMM", records, cfg)
	if err != nil {
		return nil, err
	}
	return p.(*HMM), nil
}

func attachHMM(s *core.Snapshot, cfg core.Config) *HMM {
	g := s.Grams
	p := &HMM{recs: s.Records, g: g, q: cfg.Q, postings: g.RankTable()}
	// P(t|GE) = cf/cs is per token, not per posting.
	cfcs := make([]float64, len(g.TokenByRank))
	for r, t := range g.TokenByRank {
		cfcs[r] = g.Stats.CFCS(t)
	}
	a0 := cfg.HMMA0
	a1 := 1 - a0
	for i, pairs := range g.Pairs {
		dl := float64(g.DL[i])
		if dl == 0 {
			continue
		}
		for _, pr := range pairs {
			ptge := cfcs[pr.Rank]
			if ptge == 0 {
				continue
			}
			pml := float64(pr.TF) / dl
			w := 1 + a1*pml/(a0*ptge)
			p.postings[pr.Rank] = append(p.postings[pr.Rank], core.WPost{Rec: i, W: math.Log(w)})
		}
	}
	// The per-rank weight bounds feeding max-score pruning; the attach
	// reruns on every corpus epoch, so bounds and postings move together.
	p.maxW, p.minW = core.PostingBounds(p.postings)
	return p
}

// Name implements core.Predicate.
func (p *HMM) Name() string { return "HMM" }

// plan assembles the rewritten HMM terms (log weights, so the product
// becomes a sum under exp) in descending-impact order.
func (p *HMM) plan(query string, s *core.Scratch) ([]core.Term, core.Shape) {
	qcounts := tokenize.Counts(tokenize.QGrams(query, p.q))
	terms := s.TermBuf()
	for _, rt := range p.g.OrderedKnownRanks(qcounts) {
		terms = append(terms, core.Term{
			Q:    float64(qcounts[rt.Tok]),
			W:    p.postings[rt.Rank],
			MaxW: p.maxW[rt.Rank],
			MinW: p.minW[rt.Rank],
		})
	}
	core.OrderTermsByImpact(terms)
	return terms, core.Shape{Exp: true}
}

// selectOpts ranks records by the rewritten HMM score.
func (p *HMM) selectOpts(query string, opts core.SelectOptions) ([]core.Match, error) {
	s := core.GetScratch(len(p.recs))
	defer s.Release()
	terms, sh := p.plan(query, s)
	return core.MaxScoreSelect(s, p.recs, terms, sh, opts), nil
}

func (p *HMM) selectNaive(query string, opts core.SelectOptions) ([]core.Match, error) {
	terms, sh := p.plan(query, nil)
	return core.NaiveTermSelect(p.recs, terms, sh, opts), nil
}
