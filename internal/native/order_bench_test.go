package native

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tokenize"
)

// BenchmarkQueryTokenOrder measures the per-Select cost of deterministic
// query-token iteration plus the posting probe that follows it. The
// historical path re-sorted the query's token strings on every Select and
// probed a string-keyed posting map per token; the corpus-backed path
// looks up each token's precomputed rank once, sorts small ints, and
// indexes posting slices directly.
func BenchmarkQueryTokenOrder(b *testing.B) {
	titles := makeTitles(2000)
	records := make([]core.Record, len(titles))
	for i, t := range titles {
		records[i] = core.Record{TID: i + 1, Text: t}
	}
	c, err := core.NewCorpus(records, core.DefaultConfig(), core.LayerGrams|core.LayerTokenIDs|core.LayerTFIDF)
	if err != nil {
		b.Fatal(err)
	}
	layer := c.Snapshot().Grams
	// The pre-corpus architecture: a string-keyed posting map.
	strPost := make(map[string][]core.WPost, len(layer.TokenByRank))
	for r, t := range layer.TokenByRank {
		strPost[t] = layer.TFIDFPost[r]
	}
	queries := make([]map[string]int, 64)
	for i := range queries {
		queries[i] = tokenize.Counts(tokenize.QGrams(titles[i*17%len(titles)], 2))
	}

	b.Run("StringSortMapProbe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, t := range sortedTokens(queries[i%len(queries)]) {
				total += len(strPost[t])
			}
			if total == 0 {
				b.Fatal("no postings")
			}
		}
	})
	b.Run("RankSortSliceProbe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, rt := range layer.OrderedKnownRanks(queries[i%len(queries)]) {
				total += len(layer.TFIDFPost[rt.Rank])
			}
			if total == 0 {
				b.Fatal("no postings")
			}
		}
	})
}

// BenchmarkSelectOrdered measures a full weighted Select, whose token
// iteration order now comes from the corpus rank table.
func BenchmarkSelectOrdered(b *testing.B) {
	titles := makeTitles(2000)
	records := make([]core.Record, len(titles))
	for i, t := range titles {
		records[i] = core.Record{TID: i + 1, Text: t}
	}
	p, err := NewBM25(records, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Select(titles[i*13%len(titles)]); err != nil {
			b.Fatal(err)
		}
	}
}

// makeTitles deterministically generates paper-title-like strings without
// importing the datasets package (which would cycle through the facade).
func makeTitles(n int) []string {
	words := []string{
		"approximate", "selection", "predicates", "declarative", "benchmark",
		"queries", "similarity", "tokens", "weights", "probabilistic",
		"database", "cleaning", "records", "matching", "evaluation",
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		a := words[i%len(words)]
		b := words[(i*7+3)%len(words)]
		c := words[(i*13+5)%len(words)]
		d := words[(i*29+11)%len(words)]
		out[i] = a + " " + b + " " + c + " " + d
	}
	return out
}
