package approxsel

import (
	"context"
	"errors"
	"testing"
)

func facadeRecords() []Record {
	names := CompanyNames(60, 3)
	records := make([]Record, len(names))
	for i, n := range names {
		records[i] = Record{TID: i + 1, Text: n}
	}
	return records
}

func TestFacadeNewAndSelect(t *testing.T) {
	records := facadeRecords()
	for _, name := range PredicateNames() {
		p, err := New(name, records, DefaultConfig())
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name() = %s, want %s", p.Name(), name)
		}
		ms, err := p.Select(records[0].Text)
		if err != nil {
			t.Fatalf("%s.Select: %v", name, err)
		}
		if len(ms) == 0 || ms[0].TID != 1 {
			t.Errorf("%s: self query should find record 1 first, got %v", name, ms)
		}
	}
}

func TestFacadeDeclarative(t *testing.T) {
	records := facadeRecords()[:25]
	p, err := NewDeclarative("BM25", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.Select(records[2].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].TID != 3 {
		t.Fatalf("declarative BM25: %v", ms)
	}
}

func TestSelectThreshold(t *testing.T) {
	records := facadeRecords()
	p, err := New("Jaccard", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	all, err := p.Select(records[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	half, err := SelectThreshold(p, records[0].Text, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(half) > len(all) {
		t.Fatal("threshold must not grow the result")
	}
	for _, m := range half {
		if m.Score < 0.5 {
			t.Fatalf("threshold violated: %+v", m)
		}
	}
}

func TestTopK(t *testing.T) {
	records := facadeRecords()
	p, err := New("BM25", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(p, records[0].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if _, err := TopK(p, "x", -1); err == nil {
		t.Fatal("negative k should error")
	}
}

func TestGenerateDirtyFacade(t *testing.T) {
	ds, err := GenerateDirty(CompanyNames(100, 1), Abbreviations(), DirtyParams{
		Size: 300, NumClean: 50, Dist: Uniform,
		ErroneousPct: 0.5, ErrorExtent: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 300 {
		t.Fatalf("records: %d", len(ds.Records))
	}
}

func TestMetricsFacade(t *testing.T) {
	ranked := []int{1, 9, 2}
	rel := map[int]bool{1: true, 2: true}
	if ap := AveragePrecision(ranked, rel); ap <= 0 || ap > 1 {
		t.Fatalf("AP = %v", ap)
	}
	if f1 := MaxF1(ranked, rel); f1 <= 0 || f1 > 1 {
		t.Fatalf("F1 = %v", f1)
	}
	if got := RankedTIDs([]Match{{TID: 5}, {TID: 2}}); got[0] != 5 || got[1] != 2 {
		t.Fatalf("RankedTIDs: %v", got)
	}
}

func TestPredicateNamesCopy(t *testing.T) {
	a := PredicateNames()
	a[0] = "mutated"
	if PredicateNames()[0] == "mutated" {
		t.Fatal("PredicateNames must return a copy")
	}
}

// TestSelectCtxLimitDifferential checks the acceptance contract of the
// push-down: for every one of the thirteen predicates, the heap top-k path
// (SelectCtx with Limit) must return exactly sort-then-truncate of the full
// ranking, and the threshold push-down exactly post-filtering.
func TestSelectCtxLimitDifferential(t *testing.T) {
	records := facadeRecords()
	ctx := context.Background()
	for _, name := range PredicateNames() {
		p, err := New(name, records)
		if err != nil {
			t.Fatal(err)
		}
		for _, query := range []string{records[0].Text, records[9].Text + " inc", "zzzz"} {
			full, err := p.Select(query)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, k := range []int{1, 3, 7, len(full), len(full) + 10} {
				want := full
				if k < len(want) {
					want = want[:k]
				}
				got, err := SelectCtx(ctx, p, query, Limit(k))
				if err != nil {
					t.Fatalf("%s k=%d: %v", name, k, err)
				}
				if !matchesEqual(got, want) {
					t.Fatalf("%s k=%d query %q: heap top-k diverged from sort-then-truncate\ngot:  %+v\nwant: %+v",
						name, k, query, got, want)
				}
			}
			for _, theta := range []float64{0.2, 0.5} {
				var want []Match
				for _, m := range full {
					if m.Score >= theta {
						want = append(want, m)
					}
				}
				got, err := SelectCtx(ctx, p, query, Threshold(theta))
				if err != nil {
					t.Fatalf("%s θ=%v: %v", name, theta, err)
				}
				if !matchesEqual(got, want) {
					t.Fatalf("%s θ=%v query %q: threshold push-down diverged from post-filter",
						name, theta, query)
				}
			}
		}
	}
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelectCtxDeclarativeShim checks the post-filter shim path: the
// declarative realization (no push-down) must honor the same options with
// the same results.
func TestSelectCtxDeclarativeShim(t *testing.T) {
	records := facadeRecords()[:20]
	ctx := context.Background()
	p, err := New("BM25", records, WithRealization(Declarative))
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.Select(records[3].Text)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectCtx(ctx, p, records[3].Text, Limit(4))
	if err != nil {
		t.Fatal(err)
	}
	want := full
	if len(want) > 4 {
		want = want[:4]
	}
	if !matchesEqual(got, want) {
		t.Fatalf("declarative shim diverged: %+v vs %+v", got, want)
	}
	ctx2, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := SelectCtx(ctx2, p, "x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SelectCtx: %v", err)
	}
}

// TestTopKZero pins the historical TopK(p, q, 0) behavior: empty, not
// unlimited (Limit(0) means unlimited in the option layer).
func TestTopKZero(t *testing.T) {
	records := facadeRecords()[:10]
	p, err := New("Jaccard", records)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := TopK(p, records[0].Text, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("TopK k=0 must be empty, got %d", len(ms))
	}
}
