package approxsel

import (
	"testing"
)

func facadeRecords() []Record {
	names := CompanyNames(60, 3)
	records := make([]Record, len(names))
	for i, n := range names {
		records[i] = Record{TID: i + 1, Text: n}
	}
	return records
}

func TestFacadeNewAndSelect(t *testing.T) {
	records := facadeRecords()
	for _, name := range PredicateNames() {
		p, err := New(name, records, DefaultConfig())
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name() = %s, want %s", p.Name(), name)
		}
		ms, err := p.Select(records[0].Text)
		if err != nil {
			t.Fatalf("%s.Select: %v", name, err)
		}
		if len(ms) == 0 || ms[0].TID != 1 {
			t.Errorf("%s: self query should find record 1 first, got %v", name, ms)
		}
	}
}

func TestFacadeDeclarative(t *testing.T) {
	records := facadeRecords()[:25]
	p, err := NewDeclarative("BM25", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.Select(records[2].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].TID != 3 {
		t.Fatalf("declarative BM25: %v", ms)
	}
}

func TestSelectThreshold(t *testing.T) {
	records := facadeRecords()
	p, err := New("Jaccard", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	all, err := p.Select(records[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	half, err := SelectThreshold(p, records[0].Text, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(half) > len(all) {
		t.Fatal("threshold must not grow the result")
	}
	for _, m := range half {
		if m.Score < 0.5 {
			t.Fatalf("threshold violated: %+v", m)
		}
	}
}

func TestTopK(t *testing.T) {
	records := facadeRecords()
	p, err := New("BM25", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(p, records[0].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if _, err := TopK(p, "x", -1); err == nil {
		t.Fatal("negative k should error")
	}
}

func TestGenerateDirtyFacade(t *testing.T) {
	ds, err := GenerateDirty(CompanyNames(100, 1), Abbreviations(), DirtyParams{
		Size: 300, NumClean: 50, Dist: Uniform,
		ErroneousPct: 0.5, ErrorExtent: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 300 {
		t.Fatalf("records: %d", len(ds.Records))
	}
}

func TestMetricsFacade(t *testing.T) {
	ranked := []int{1, 9, 2}
	rel := map[int]bool{1: true, 2: true}
	if ap := AveragePrecision(ranked, rel); ap <= 0 || ap > 1 {
		t.Fatalf("AP = %v", ap)
	}
	if f1 := MaxF1(ranked, rel); f1 <= 0 || f1 > 1 {
		t.Fatalf("F1 = %v", f1)
	}
	if got := RankedTIDs([]Match{{TID: 5}, {TID: 2}}); got[0] != 5 || got[1] != 2 {
		t.Fatalf("RankedTIDs: %v", got)
	}
}

func TestPredicateNamesCopy(t *testing.T) {
	a := PredicateNames()
	a[0] = "mutated"
	if PredicateNames()[0] == "mutated" {
		t.Fatal("PredicateNames must return a copy")
	}
}
