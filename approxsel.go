// Package approxsel is a library of declarative approximate selection
// predicates, reproducing "Benchmarking Declarative Approximate Selection
// Predicates" (Hassanzadeh, 2007; the SIGMOD 2007 benchmark study).
//
// An approximate selection takes a query string and returns the tuples of a
// base relation ranked by a similarity predicate. The library ships the
// paper's thirteen predicates in five classes — overlap (IntersectSize,
// Jaccard, WeightedMatch, WeightedJaccard), aggregate weighted (Cosine,
// BM25), language modeling (LM, HMM), edit-based (EditDistance) and
// combination (GES, GESJaccard, GESapx, SoftTFIDF) — in two interchangeable
// realizations:
//
//   - Native (the default) is the fast in-memory realization;
//   - Declarative (WithRealization(Declarative)) is the paper's
//     realization: plain SQL statements (Appendices A/B of the thesis)
//     executed by the bundled sqldb engine, with UDFs for edit similarity,
//     Jaro–Winkler and min-hash values.
//
// Both produce identical scores; the declarative path exists to study the
// approach the paper advocates, and the performance experiments run on it.
//
// Construction goes through a pluggable predicate registry. New resolves a
// predicate name against the chosen realization (WithRealization, default
// Native) and applies functional options on top of the paper's defaults:
//
//	records := []approxsel.Record{{TID: 1, Text: "AT&T Incorporated"}, ...}
//	p, err := approxsel.New("BM25", records,
//	        approxsel.WithQ(3), approxsel.WithPruneRate(0.1))
//	matches, err := p.Select("AT&T Inc")
//
// Applications plug their own predicates into the same framework with
// Register (and remove them with Unregister) — the extensibility story the
// paper argues for — and enumerate everything New can build with
// PredicateNames and Realizations.
//
// The paper's framework stores one set of precomputed token/weight tables
// inside the DBMS that every predicate shares. OpenCorpus exposes that
// store directly: it tokenizes the relation once, Corpus.Predicate
// attaches any registered predicate as a lightweight view over the shared
// tables (thirteen predicates, one preprocessing pass), and
// Insert/Delete/Upsert mutate the relation in place with epoch-versioned,
// concurrency-safe statistics maintenance:
//
//	corpus, err := approxsel.OpenCorpus(records)
//	bm25, err := corpus.Predicate("BM25")
//	err = corpus.Insert(approxsel.Record{TID: 9001, Text: "AT&T Wireless"})
//	matches, err := bm25.Select("AT&T Inc")     // observes the insert
//
// Selections take options too: SelectCtx pushes Limit(k) and Threshold(θ)
// down into the predicate (a k-bounded heap instead of a full sort of the
// candidate set), and SelectBatch probes many queries through a worker pool
// honoring context cancellation:
//
//	top, err := approxsel.SelectCtx(ctx, p, "AT&T Inc", approxsel.Limit(10))
//	res, err := approxsel.SelectBatch(ctx, p, queries, approxsel.Workers(8))
//
// OpenShardedCorpus partitions the relation across per-core corpus shards:
// preprocessing, mutations and probing parallelize across the shards, and
// selections merge the per-shard top-k rankings deterministically. The
// sharded corpus (with its per-shard epoch vector) is the storage engine of
// cmd/approxserved, the HTTP/JSON serving subsystem with an epoch-keyed
// result cache (internal/server).
//
// The package also exposes the benchmark itself: the UIS-style dirty-data
// generator (GenerateDirty), synthetic clean datasets matching the paper's
// Table 5.1 statistics (CompanyNames, DBLPTitles), and the IR accuracy
// metrics (AveragePrecision, MaxF1) used by the evaluation.
package approxsel

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dirty"
	"repro/internal/eval"
)

// Record is one tuple of the base relation: a unique identifier and a
// string attribute.
type Record = core.Record

// Match is one ranked result of an approximate selection.
type Match = core.Match

// Config holds the tunable parameters of all predicates; start from
// DefaultConfig.
type Config = core.Config

// Predicate is a preprocessed approximate-selection predicate over a fixed
// base relation. Select returns matches ranked by decreasing similarity.
type Predicate = core.Predicate

// DefaultConfig returns the paper's parameter settings (§5.3.2): q=2,
// BM25 k1=1.5/k3=8/b=0.675, HMM a0=0.2, GES cins=0.5 and filter θ=0.8,
// SoftTFIDF θ=0.8, edit filter θ=0.7, 5 min-hash signatures.
func DefaultConfig() Config { return core.DefaultConfig() }

// New preprocesses the base relation for the named predicate, resolving the
// name through the predicate registry. With no options it builds the
// in-memory realization under the paper's DefaultConfig; options select the
// realization (WithRealization) and adjust parameters (WithQ, WithBM25,
// ...). A Config value is itself an option replacing the whole parameter
// set, so the original call form New(name, records, cfg) keeps working.
//
// With WithCorpus the predicate instead attaches to a shared Corpus
// (records is ignored): thirteen predicates attached to one corpus share a
// single tokenization/statistics pass, and the predicate observes
// Insert/Delete/Upsert on the corpus. Without the option, New builds a
// private one-shot corpus materializing only the layers the predicate
// reads, so the cost of single-predicate construction is unchanged.
func New(name string, records []Record, opts ...BuildOption) (Predicate, error) {
	settings := core.BuildSettings{
		Config:      core.DefaultConfig(),
		Realization: string(Native),
	}
	for _, o := range opts {
		o.ApplyBuild(&settings)
	}
	if settings.DataDir != "" {
		return nil, fmt.Errorf("approxsel: WithDataDir is not a valid New option; open a durable corpus with OpenCorpus(records, WithDataDir(dir)) and attach through Corpus.Predicate")
	}
	if settings.Corpus != nil {
		return attachToCorpus(settings.Corpus, Realization(settings.Realization), name, settings.Config)
	}
	builder, err := lookupBuilder(Realization(settings.Realization), name)
	if err != nil {
		return nil, err
	}
	return builder(records, settings.Config)
}

// NewDeclarative preprocesses the base relation for the named predicate
// using the declarative (SQL) realization over the bundled engine.
//
// Deprecated: use New with WithRealization(Declarative). This wrapper is
// kept so existing callers compile unchanged.
func NewDeclarative(name string, records []Record, cfg Config) (Predicate, error) {
	return New(name, records, WithConfig(cfg), WithRealization(Declarative))
}

// SelectCtx runs one approximate selection with per-selection options. A
// Limit or Threshold is pushed down into the predicate when it supports it
// (core.ContextPredicate — all native predicates), replacing the full sort
// of the candidate set with a k-bounded heap and pre-materialization
// filtering; for other predicates the options are applied as a post-filter
// with identical results. The context is checked before probing, and
// cancellation mid-batch is honored by SelectBatch.
func SelectCtx(ctx context.Context, p Predicate, query string, opts ...SelectOption) ([]Match, error) {
	return core.SelectWithOptions(ctx, p, query, selectOptions(opts))
}

// SelectThreshold runs an approximate selection and keeps matches with
// score ≥ theta: the paper's sim(t_q, t) ≥ θ operation. It delegates to the
// option-based path, so predicates with push-down filter before
// materializing the ranking.
func SelectThreshold(p Predicate, query string, theta float64) ([]Match, error) {
	return SelectCtx(context.Background(), p, query, Threshold(theta))
}

// TopK runs an approximate selection and keeps the k best matches. It
// delegates to the option-based path, so predicates with push-down rank
// with a k-bounded heap instead of sorting the full candidate set.
func TopK(p Predicate, query string, k int) ([]Match, error) {
	if k < 0 {
		return nil, fmt.Errorf("approxsel: negative k %d", k)
	}
	if k == 0 {
		return []Match{}, nil
	}
	return SelectCtx(context.Background(), p, query, Limit(k))
}

// ---- benchmark data generation ----

// DirtyParams configure the UIS-style dirty-data generator (§5.1).
type DirtyParams = dirty.Params

// DirtyDataset is a generated dirty relation with duplicate ground truth.
type DirtyDataset = dirty.Dataset

// Duplicate distributions for DirtyParams.Dist.
const (
	Uniform = dirty.Uniform
	Zipfian = dirty.Zipfian
	Poisson = dirty.Poisson
)

// GenerateDirty injects controlled errors into a clean relation, tracking
// which clean tuple every duplicate came from.
func GenerateDirty(clean []string, abbrs [][2]string, p DirtyParams) (*DirtyDataset, error) {
	return dirty.Generate(clean, abbrs, p)
}

// CompanyNames generates n synthetic company names matching the statistics
// of the paper's company dataset (Table 5.1).
func CompanyNames(n int, seed int64) []string { return datasets.CompanyNames(n, seed) }

// DBLPTitles generates n synthetic paper titles matching the statistics of
// the paper's DBLP dataset (Table 5.1).
func DBLPTitles(n int, seed int64) []string { return datasets.DBLPTitles(n, seed) }

// Abbreviations returns the company-domain long/short substitution pairs
// used for abbreviation errors.
func Abbreviations() [][2]string { return datasets.Abbreviations() }

// ---- accuracy metrics (§5.2) ----

// AveragePrecision computes the average precision of a ranked TID list
// against a relevant set (Eq. 5.1).
func AveragePrecision(ranked []int, relevant map[int]bool) float64 {
	return eval.AveragePrecision(ranked, relevant)
}

// MaxF1 computes the maximum F1 over the ranking (Eq. 5.2).
func MaxF1(ranked []int, relevant map[int]bool) float64 {
	return eval.MaxF1(ranked, relevant)
}

// RankedTIDs extracts the TID ranking from a match list, for use with the
// accuracy metrics.
func RankedTIDs(ms []Match) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.TID
	}
	return out
}
