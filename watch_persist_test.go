package approxsel

import (
	"testing"
)

// The watch × approxstore suite: a durable corpus's WAL replay window
// seeds the watch hub's resume history on a cold start, so a client that
// reconnects across a process restart with its last-seen epoch vector
// receives exactly the events it missed — nothing lost, nothing twice —
// and then continues live, with the fold still bit-identical to the
// from-scratch batch join.

type durableWatchCorpus interface {
	watchCorpus
	CloseStore() error
}

func testWatchColdStartResume(t *testing.T, open func(*testing.T, []Record, string) (durableWatchCorpus, error)) {
	dir := t.TempDir()
	recs := dirtyWatchData(t)

	c, err := open(t, recs[:60], dir)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	full, err := c.RegisterWatch("Jaccard", 0.45, WithResume(c.Epochs()), WithWatchBuffer(1<<15))
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	// First life, window A: all three mutation kinds land in the WAL.
	for i := 60; i < 80; i += 2 {
		if err := c.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := c.Delete(recs[0].TID, recs[1].TID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := c.Upsert(Record{TID: recs[2].TID, Text: recs[100].Text}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	vec1 := c.Epochs()
	recsAtVec1 := c.Records()
	before := drainWatch(full)

	// First life, window B: the events a client at vec1 will miss.
	for i := 80; i < 100; i += 2 {
		if err := c.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := c.Upsert(Record{TID: recs[3].TID, Text: recs[110].Text}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	vec2 := c.Epochs()
	missed := drainWatch(full)
	if len(before) == 0 || len(missed) == 0 {
		t.Fatalf("test vacuous: %d events before vector, %d after", len(before), len(missed))
	}
	full.Close()
	if err := c.CloseStore(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// Cold start from the same directory: the store must come back at vec2
	// with the missed window replayable.
	c2, err := open(t, nil, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := c2.Epochs()
	for i := range got {
		if got[i] != vec2[i] {
			t.Fatalf("reopened epochs = %v, want %v", got, vec2)
		}
	}
	resumed, err := c2.RegisterWatch("Jaccard", 0.45, WithResume(vec1), WithWatchBuffer(1<<15))
	if err != nil {
		t.Fatalf("cold resume register: %v", err)
	}
	replay := drainWatch(resumed)
	if len(replay) != len(missed) {
		t.Fatalf("cold resume replayed %d events, continuous watch saw %d", len(replay), len(missed))
	}
	for i := range replay {
		if replay[i] != missed[i] {
			t.Fatalf("replay event %d = %+v, continuous saw %+v", i, replay[i], missed[i])
		}
	}

	// A client already at vec2 replays nothing — reconnecting after a
	// restart never delivers twice.
	caughtUp, err := c2.RegisterWatch("Jaccard", 0.45, WithResume(vec2))
	if err != nil {
		t.Fatalf("caught-up register: %v", err)
	}
	if evs := drainWatch(caughtUp); len(evs) != 0 {
		t.Fatalf("watch resumed at the restart vector replayed %d events", len(evs))
	}

	// The resumed watch continues live, and folding its replayed + live
	// events onto the batch join at vec1 reproduces the batch join over the
	// current records — the bit-identity contract holds across the restart.
	if err := c2.Insert(recs[100:104]...); err != nil {
		t.Fatalf("post-restart insert: %v", err)
	}
	fold := oracleSelf(t, recsAtVec1, "Jaccard", 0.45, c2.Config())
	foldEvents(t, fold, replay, true)
	foldEvents(t, fold, drainWatch(resumed), true)
	compareFold(t, "cold start", fold, oracleSelf(t, c2.Records(), "Jaccard", 0.45, c2.Config()))
}

func TestWatchColdStartResume(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		t.Parallel()
		testWatchColdStartResume(t, func(t *testing.T, recs []Record, dir string) (durableWatchCorpus, error) {
			return OpenCorpus(recs, WithDataDir(dir))
		})
	})
	t.Run("sharded", func(t *testing.T) {
		t.Parallel()
		testWatchColdStartResume(t, func(t *testing.T, recs []Record, dir string) (durableWatchCorpus, error) {
			return OpenShardedCorpus(recs, 3, WithDataDir(dir))
		})
	})
}
