package approxsel

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/watch"
)

// This file is the corpus-level face of approxcluster, the replicated
// serving layer: a ShardedCorpus can act as the replication *source*
// (SetReplicationObserver hands every applied mutation batch — the exact
// epoch-stamped grouping the write-ahead log stores — to a shipping layer)
// or as a replication *target* (ApplyReplicated applies a shipped batch
// through the ordinary mutation path, so the replica's snapshots, WAL,
// watch hub and epoch vector advance bit-identically to the source's).
//
// The unit of replication is watch.Batch: one logical mutation with one
// corpus-wide sequence number and one epoch-stamped sub-mutation per
// touched shard — precisely what store.Log persists per shard and what
// watch.GroupBatches reassembles from a cold start's WAL replay. Shipping
// that shape means a replica's WAL is interchangeable with the source's,
// and a watch registered on a replica resumes from the replicated history
// exactly as it would on the source.

// ReplicationBatch is one logical, epoch-stamped mutation batch in the
// shape the replication layer ships: per-shard sub-mutations sharing one
// corpus-wide sequence number — the WAL's replay grouping.
type ReplicationBatch = watch.Batch

// ReplicationSub is one shard's slice of a ReplicationBatch.
type ReplicationSub = watch.SubMutation

// ErrReplicaGap reports a replicated batch that does not follow the
// replica's current state: some shard would have to skip an epoch to apply
// it. The replica must re-request the stream from its last applied epoch
// vector (never skip ahead).
var ErrReplicaGap = fmt.Errorf("approxsel: replicated batch leaves an epoch gap")

// ErrReplicaDiverged reports a replica whose state no longer matches the
// replication source: a shipped batch applied but produced a different
// epoch, or failed validation that the source passed. The replica must
// discard its copy and re-join from a full snapshot.
var ErrReplicaDiverged = fmt.Errorf("approxsel: replica state diverged from the replication source")

// Seq returns the corpus-wide sequence number of the last applied logical
// mutation batch (zero for a freshly built corpus).
func (s *ShardedCorpus) Seq() uint64 { return s.seq.Load() }

// ResumeSeq fast-forwards the corpus-wide batch sequence counter to at
// least seq. The replication layer calls it after installing a snapshot,
// so sequence numbers keep increasing across the ownership change.
func (s *ShardedCorpus) ResumeSeq(seq uint64) {
	for {
		cur := s.seq.Load()
		if cur >= seq || s.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// SetReplicationObserver installs fn as the corpus's replication source
// hook: it is called under the mutation lock with every logical batch that
// applied (on a partial multi-shard failure, with exactly the sub-batches
// that landed), after the batch is durable in the WAL and visible to
// selections. fn must not mutate the corpus. Passing nil removes the hook.
func (s *ShardedCorpus) SetReplicationObserver(fn func(ReplicationBatch)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replObs = fn
}

// ApplyReplicated applies one shipped batch to this replica through the
// ordinary mutation path: every sub-mutation lands on its shard, is
// write-ahead logged (for a durable replica) and fans out to watches, and
// the shard must arrive at exactly the epoch the batch was stamped with at
// the source. Application is idempotent per shard — sub-mutations the
// replica already holds (shard epoch at or past the stamp) are skipped, so
// re-shipping a window after a torn WAL tail re-applies only what was
// lost. A batch that would skip an epoch fails with ErrReplicaGap; one
// that applies to a different state fails with ErrReplicaDiverged.
//
// The idempotency skip is content-blind — it trusts that a sub-mutation
// already at-or-past its stamped epoch is the same sub-mutation, which
// only holds when everything applied here came from a single replication
// lineage. The cluster layer enforces that upstream: pulls open with a
// (seq, term) lineage handshake, and a replica holding a conflicting fork
// at the same numeric position (a deposed leader's unacknowledged suffix)
// is refused and re-joins from a snapshot instead of reaching this path.
func (s *ShardedCorpus) ApplyReplicated(b ReplicationBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range b.Subs {
		if sub.Shard < 0 || sub.Shard >= len(s.shards) {
			return fmt.Errorf("%w: batch %d names shard %d of %d", ErrReplicaDiverged, b.Seq, sub.Shard, len(s.shards))
		}
		if cur := s.shards[sub.Shard].Epoch(); cur < sub.Epoch-1 {
			return fmt.Errorf("%w: shard %d at epoch %d cannot apply batch %d at epoch %d", ErrReplicaGap, sub.Shard, cur, b.Seq, sub.Epoch)
		}
	}
	// Stamp the source's sequence number before applying, so each shard's
	// WAL entry logs it and a cold start regroups the batch correctly.
	s.ResumeSeq(b.Seq)
	var applied []ReplicationSub
	for _, sub := range b.Subs {
		c := s.shards[sub.Shard]
		if c.Epoch() >= sub.Epoch {
			continue // already holds this sub-batch
		}
		var err error
		switch sub.Kind {
		case core.MutationDelete:
			err = c.Delete(sub.Del...)
		case core.MutationUpsert:
			err = c.Upsert(sub.Add...)
		case core.MutationInsert:
			err = c.Insert(sub.Add...)
		default:
			err = fmt.Errorf("unknown mutation kind %d", sub.Kind)
		}
		if err != nil {
			return fmt.Errorf("%w: shard %d rejected batch %d: %v", ErrReplicaDiverged, sub.Shard, b.Seq, err)
		}
		if got := c.Epoch(); got != sub.Epoch {
			return fmt.Errorf("%w: shard %d reached epoch %d, batch %d stamped %d", ErrReplicaDiverged, sub.Shard, got, b.Seq, sub.Epoch)
		}
		applied = append(applied, sub)
	}
	if len(applied) > 0 {
		if s.hub != nil {
			s.hub.OnBatch(watch.Batch{Seq: b.Seq, Subs: applied})
		}
		// The replica re-announces what it applied: its own replication
		// history stays populated, so it can serve as a re-ship source the
		// moment it is elected leader.
		if s.replObs != nil {
			s.replObs(watch.Batch{Seq: b.Seq, Subs: applied})
		}
	}
	return nil
}

// ---- full-snapshot transfer (the join/catch-up path) ----

// replicaSnapshotHeader is the JSON header line of a replica snapshot
// stream: the shard layout, the batch sequence number and the shard-epoch
// vector the segments encode.
type replicaSnapshotHeader struct {
	Version int      `json:"version"`
	Shards  int      `json:"shards"`
	Seq     uint64   `json:"seq"`
	Epochs  []uint64 `json:"epochs"`
}

// WriteReplicaSnapshot streams a consistent full snapshot of the corpus —
// a JSON header line, then one length-prefixed snapshot segment per shard —
// the payload a joining or lagging replica installs with
// OpenReplicaSnapshot. Mutations are frozen only while the segments are
// serialized into memory (the header's epoch vector must name one global
// version); the write to w happens after the mutation lock is released, so
// a slow or stalled receiver — a joining follower on a thin link — cannot
// block the source's mutations or, on a leader, quorum acknowledgement.
// Selections proceed unaffected throughout.
func (s *ShardedCorpus) WriteReplicaSnapshot(w io.Writer) error {
	header, segs, err := s.replicaSnapshotBuffers()
	if err != nil {
		return err
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	for _, seg := range segs {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(seg)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		if _, err := w.Write(seg); err != nil {
			return err
		}
	}
	return nil
}

// replicaSnapshotBuffers serializes the snapshot under the mutation lock:
// the header line and one encoded segment per shard, all at one epoch
// vector.
func (s *ShardedCorpus) replicaSnapshotBuffers() (header []byte, segs [][]byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hdr := replicaSnapshotHeader{Version: 1, Shards: len(s.shards), Seq: s.seq.Load(), Epochs: s.Epochs()}
	data, err := json.Marshal(hdr)
	if err != nil {
		return nil, nil, err
	}
	segs = make([][]byte, len(s.shards))
	for i, c := range s.shards {
		bw := &sliceWriter{}
		if err := c.WriteSnapshot(bw); err != nil {
			return nil, nil, err
		}
		segs[i] = bw.b
	}
	return append(data, '\n'), segs, nil
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// maxReplicaSegment bounds one shard's segment in a replica snapshot
// stream (the segment format's own section bound).
const maxReplicaSegment = 1 << 30

// OpenReplicaSnapshot installs a replica snapshot stream written by
// WriteReplicaSnapshot. With an empty dataDir the corpus is built in
// memory; otherwise dataDir is (re)initialized as the corpus's store —
// segments at the shipped epochs, empty WALs, a manifest naming the
// shipped version — and opened durably, replacing whatever store was
// there (the join path runs exactly when the local copy is missing or has
// diverged). Either way the result is bit-identical to the source corpus
// at the shipped epoch vector, including the vector itself.
func OpenReplicaSnapshot(r io.Reader, dataDir string) (*ShardedCorpus, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("approxsel: replica snapshot header: %w", err)
	}
	var hdr replicaSnapshotHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("approxsel: replica snapshot header: %w", err)
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("approxsel: unsupported replica snapshot version %d", hdr.Version)
	}
	if hdr.Shards < 1 || len(hdr.Epochs) != hdr.Shards {
		return nil, fmt.Errorf("approxsel: replica snapshot names %d shards with %d epochs", hdr.Shards, len(hdr.Epochs))
	}
	segs := make([][]byte, hdr.Shards)
	for i := range segs {
		var n [8]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, fmt.Errorf("approxsel: replica snapshot shard %d: %w", i, err)
		}
		size := binary.LittleEndian.Uint64(n[:])
		if size > maxReplicaSegment {
			return nil, fmt.Errorf("approxsel: replica snapshot shard %d claims %d bytes", i, size)
		}
		segs[i] = make([]byte, size)
		if _, err := io.ReadFull(br, segs[i]); err != nil {
			return nil, fmt.Errorf("approxsel: replica snapshot shard %d: %w", i, err)
		}
	}

	if dataDir == "" {
		s := &ShardedCorpus{shards: make([]*core.Corpus, hdr.Shards)}
		var base []core.Record
		for i, seg := range segs {
			c, err := core.LoadSnapshot(seg)
			if err != nil {
				return nil, fmt.Errorf("approxsel: replica snapshot shard %d: %w", i, err)
			}
			if c.Epoch() != hdr.Epochs[i] {
				return nil, fmt.Errorf("approxsel: replica snapshot shard %d decodes to epoch %d, header says %d", i, c.Epoch(), hdr.Epochs[i])
			}
			s.shards[i] = c
			base = append(base, c.Records()...)
		}
		s.cfg = s.shards[0].Config()
		s.seq.Store(hdr.Seq)
		s.initWatchHub(base, hdr.Epochs, nil)
		return s, nil
	}

	// Durable install: materialize a store directory holding exactly the
	// shipped version, then open it through the ordinary durable path.
	if err := os.RemoveAll(dataDir); err != nil {
		return nil, fmt.Errorf("approxsel: replica install: %w", err)
	}
	for i, seg := range segs {
		if err := store.MaterializeShard(store.ShardDir(dataDir, i), seg, hdr.Epochs[i]); err != nil {
			return nil, fmt.Errorf("approxsel: replica install shard %d: %w", i, err)
		}
	}
	if err := store.WriteManifest(dataDir, store.Manifest{Version: 1, Shards: hdr.Shards, Epochs: hdr.Epochs, Seq: hdr.Seq}); err != nil {
		return nil, err
	}
	s, err := OpenShardedCorpus(nil, hdr.Shards, WithDataDir(dataDir))
	if err != nil {
		return nil, err
	}
	s.ResumeSeq(hdr.Seq)
	return s, nil
}
