package approxsel

import (
	"repro/internal/sqldb"
)

// SQLDB is the bundled in-memory SQL engine the declarative predicates run
// on, exposed so applications can realize their own similarity predicates
// declaratively — the extensibility story of the paper's framework. See
// NewSQLDB.
type SQLDB = sqldb.DB

// SQLRows is a materialized query result from the SQL engine.
type SQLRows = sqldb.Rows

// SQLValue is a runtime value of the SQL engine (NULL, INT, DOUBLE or
// VARCHAR).
type SQLValue = sqldb.Value

// SQLFunc is a user-defined scalar function registerable on the engine,
// like the paper's edit-similarity and Jaro–Winkler UDFs.
type SQLFunc = sqldb.ScalarFunc

// NewSQLDB creates an empty database. The engine supports the SQL subset
// the paper's declarative framework needs: CREATE TABLE / CREATE INDEX /
// INSERT (VALUES and SELECT) / DELETE / SELECT with multi-table joins,
// derived tables, GROUP BY / HAVING / ORDER BY / LIMIT / DISTINCT /
// UNION ALL, aggregate functions, the MySQL scalar functions used by the
// thesis appendices, '?' placeholders and user-defined functions.
//
//	db := approxsel.NewSQLDB()
//	db.Exec("CREATE TABLE base_tokens (tid INT, token VARCHAR(8))")
//	db.RegisterFunc("EDITSIM", myEditSim)
//	rows, err := db.Query("SELECT ...")
func NewSQLDB() *SQLDB { return sqldb.New() }

// SQLNull returns the engine's NULL value.
func SQLNull() SQLValue { return sqldb.Null() }

// SQLInt wraps an integer as an engine value.
func SQLInt(i int64) SQLValue { return sqldb.Int(i) }

// SQLFloat wraps a float as an engine value.
func SQLFloat(f float64) SQLValue { return sqldb.Float(f) }

// SQLString wraps a string as an engine value.
func SQLString(s string) SQLValue { return sqldb.String(s) }
