package approxsel

import (
	"context"

	"repro/internal/core"
	"repro/internal/watch"
)

// This file is the public face of approxwatch, the standing-query
// subsystem: RegisterWatch installs a predicate + threshold pair over a
// live Corpus or ShardedCorpus and streams epoch-tagged match/unmatch
// events as the relation mutates, instead of re-running ApproximateJoin.
// Folding a watch's events up to epoch E reproduces the batch join at
// epoch E bit for bit — same pair set, same scores.
//
//	w, err := corpus.RegisterWatch("Jaccard", 0.6)
//	for ev := range w.Events() { ... }     // online dedup
//
//	w, err := corpus.RegisterWatch("Jaccard", 0.6,
//	    approxsel.WithProbes(queries...))  // incremental join against a fixed probe set
//
// Delivery resumes: pass WithResume(lastSeenEpochs) and the missed window
// replays (from the WAL's replay window after a cold start) before live
// events continue, each missed event exactly once.
//
// Watches accept the stats-free predicates only — Jaccard, IntersectSize,
// EditDistance — because any statistics-weighted score shifts on every
// mutation, which no delta evaluation can track exactly.

// WatchEvent is one incremental change to a watch's join result.
type WatchEvent = watch.Event

// Watch is a registered standing query; consume Events until closed.
type Watch = watch.Watch

// WatchStats is the per-corpus watch observability block.
type WatchStats = watch.Stats

// ErrResumeTooOld reports a WithResume vector older than the corpus's
// replayable history window.
var ErrResumeTooOld = watch.ErrResumeTooOld

// ErrWatchLagged reports a watch consumer that fell behind its delivery
// buffer; re-register with the last seen epoch vector to resume.
var ErrWatchLagged = watch.ErrLagged

// WatchOption adjusts a watch registration.
type WatchOption func(*watch.Spec)

// WithProbes turns the watch into an incremental join: events track the
// approximate join of the fixed probe relation against the corpus, rather
// than the corpus's self join.
func WithProbes(records ...Record) WatchOption {
	return func(s *watch.Spec) {
		s.Probes = append([]Record(nil), records...)
	}
}

// WithResume replays the window the client missed: epochs is the
// per-shard epoch vector it last saw (one entry for a plain Corpus).
func WithResume(epochs []uint64) WatchOption {
	return func(s *watch.Spec) {
		s.Resume = append([]uint64(nil), epochs...)
	}
}

// WithWatchBuffer sets the delivery channel capacity (default 1024).
func WithWatchBuffer(n int) WatchOption {
	return func(s *watch.Spec) { s.Buffer = n }
}

// watchSpec folds options into a registration spec.
func watchSpec(predicate string, theta float64, opts []WatchOption) watch.Spec {
	spec := watch.Spec{Predicate: predicate, Theta: theta}
	for _, o := range opts {
		o(&spec)
	}
	return spec
}

// watchProbe adapts an attached predicate view into the hub's hot-path
// probe: thresholded, unlimited selection against the live corpus.
func watchProbe(pred Predicate) watch.ProbeFunc {
	return func(query string, theta float64) ([]core.Match, error) {
		return core.SelectWithOptions(context.Background(), pred, query,
			core.SelectOptions{Threshold: theta, HasThreshold: true})
	}
}

// watchPredOpts aligns the probe predicate's configuration with the
// watch: EditDistance verifies against its configured theta, which must
// equal the watch threshold for the candidate filter to be exact.
func watchPredOpts(predicate string, theta float64) []BuildOption {
	if predicate == "EditDistance" {
		return []BuildOption{WithEditTheta(theta)}
	}
	return nil
}

// ---- plain Corpus ----

// RegisterWatch installs a standing query on the corpus: predicate one of
// the stats-free watchable predicates, theta the positive match
// threshold. Without options it is a self watch (online dedup). The
// returned Watch delivers until Close, corpus CloseWatches, or the
// consumer lags.
func (c *Corpus) RegisterWatch(predicate string, theta float64, opts ...WatchOption) (*Watch, error) {
	spec := watchSpec(predicate, theta, opts)
	var probe watch.ProbeFunc
	if spec.Probes == nil {
		pred, err := c.Predicate(predicate, watchPredOpts(predicate, theta)...)
		if err != nil {
			return nil, err
		}
		probe = watchProbe(pred)
	}
	return c.hub.Register(spec, probe)
}

// CloseWatches closes every watch on the corpus cleanly and rejects
// further registrations (graceful drain).
func (c *Corpus) CloseWatches() { c.hub.CloseAll() }

// WatchStats reports the corpus's watch counters.
func (c *Corpus) WatchStats() WatchStats { return c.hub.Stats() }

// Epochs returns the epoch vector a watch resume token uses; a plain
// corpus has one entry, equal to Epoch.
func (c *Corpus) Epochs() []uint64 { return c.hub.Epochs() }

// wireWatchHub builds the corpus's watch hub over the given base state
// (plus, after a durable cold start, the WAL replay window as resumable
// history) and subscribes it to the mutation stream.
func wireWatchHub(c *core.Corpus, base []core.Record, baseEpoch uint64, muts []core.Mutation) *watch.Hub {
	var hist []watch.Batch
	if len(muts) > 0 {
		hist = watch.GroupBatches([][]core.Mutation{muts})
	}
	hub := watch.NewHub(c.Config(), 1, base, []uint64{baseEpoch}, hist)
	c.AddMutationObserver(func(m core.Mutation) {
		hub.OnBatch(watch.Batch{Seq: m.Seq, Subs: []watch.SubMutation{
			{Shard: 0, Kind: m.Kind, Add: m.Add, Del: m.Del, Epoch: m.Epoch},
		}})
	})
	return hub
}

// ---- ShardedCorpus ----

// RegisterWatch installs a standing query on the sharded corpus; see
// Corpus.RegisterWatch. Resume vectors carry one epoch per shard, and the
// self-watch probe fans out across all shards.
func (s *ShardedCorpus) RegisterWatch(predicate string, theta float64, opts ...WatchOption) (*Watch, error) {
	spec := watchSpec(predicate, theta, opts)
	var probe watch.ProbeFunc
	if spec.Probes == nil {
		pred, err := s.Predicate(predicate, watchPredOpts(predicate, theta)...)
		if err != nil {
			return nil, err
		}
		probe = watchProbe(pred)
	}
	return s.hub.Register(spec, probe)
}

// CloseWatches closes every watch on the corpus cleanly and rejects
// further registrations (graceful drain).
func (s *ShardedCorpus) CloseWatches() { s.hub.CloseAll() }

// WatchStats reports the corpus's watch counters.
func (s *ShardedCorpus) WatchStats() WatchStats { return s.hub.Stats() }

// initWatchHub builds the sharded corpus's hub and points every shard's
// sequence source at the corpus-wide batch counter, so all sub-batches of
// one logical mutation log the same sequence number.
func (s *ShardedCorpus) initWatchHub(base []core.Record, baseEpochs []uint64, hist []watch.Batch) {
	s.hub = watch.NewHub(s.cfg, len(s.shards), base, baseEpochs, hist)
	for _, c := range s.shards {
		c.SetSeqSource(func() uint64 { return s.seq.Load() })
	}
}
