package approxsel

// One benchmark per table and figure of the paper's evaluation chapter.
// Each bench runs the corresponding experiment end to end at a reduced
// scale (Scaled(10): 500-tuple datasets, 50 queries; performance figures on
// 1–2k-record relations), so `go test -bench=.` regenerates every artifact
// in minutes. The approxbench binary runs the same experiments at paper
// scale and prints the tables.

import (
	"context"
	"io"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

func benchAccOpts() experiments.Options {
	return experiments.Scaled(10)
}

func benchPerfOpts() experiments.PerfOptions {
	o := experiments.PerfDefaults()
	o.Size = 1000
	o.Sizes = []int{500, 1000, 2000}
	o.Queries = 10
	return o
}

// BenchmarkTable51_DatasetStats regenerates Table 5.1 (clean dataset
// statistics).
func BenchmarkTable51_DatasetStats(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		r := experiments.Table51(o)
		if r.Company.Tuples == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable53_DatasetGeneration regenerates Table 5.3 (the thirteen
// benchmark datasets).
func BenchmarkTable53_DatasetGeneration(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table53(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable_QgramSize regenerates the §5.3.3 q-gram size accuracy
// table.
func BenchmarkTable_QgramSize(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.QGramSize(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable55_AbbrTokenSwap regenerates Table 5.5 (accuracy under
// abbreviation and token swap errors).
func BenchmarkTable55_AbbrTokenSwap(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table55(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable56_EditErrors regenerates Table 5.6 (accuracy under edit
// errors of growing extent).
func BenchmarkTable56_EditErrors(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table56(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure51_MAP regenerates Figure 5.1 (MAP per error class for
// all thirteen predicates).
func BenchmarkFigure51_MAP(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure51(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable57_GESThresholds regenerates Table 5.7 (GES filter
// threshold sweep on CU1).
func BenchmarkTable57_GESThresholds(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table57(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure52_Preprocessing regenerates Figure 5.2 (preprocessing
// time per predicate, declarative realization).
func BenchmarkFigure52_Preprocessing(b *testing.B) {
	o := benchPerfOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure52(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure53_QueryTime regenerates Figure 5.3 (query time per
// predicate, declarative realization).
func BenchmarkFigure53_QueryTime(b *testing.B) {
	o := benchPerfOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure53(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure54_Scalability regenerates Figure 5.4 (query time vs base
// table size for the paper's predicate groups).
func BenchmarkFigure54_Scalability(b *testing.B) {
	o := benchPerfOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure54(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure55_Pruning regenerates Figure 5.5 (IDF pruning: MAP and
// query time vs pruning rate).
func BenchmarkFigure55_Pruning(b *testing.B) {
	ao := benchAccOpts()
	ao.Queries = 20
	po := benchPerfOpts()
	po.Queries = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure55(ao, po); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure56_IDFHistogram regenerates Figure 5.6 (IDF distribution
// of 3-grams on CU1).
func BenchmarkFigure56_IDFHistogram(b *testing.B) {
	o := benchAccOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure56(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAll_Tiny runs the entire experiment suite end to end at a
// very small scale, as a smoke benchmark of the whole pipeline.
func BenchmarkRunAll_Tiny(b *testing.B) {
	ao := experiments.Scaled(25)
	po := benchPerfOpts()
	po.Size = 300
	po.Sizes = []int{300}
	po.Queries = 3
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(io.Discard, ao, po); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationMinHashK sweeps the GESapx signature size (§5.4.1).
func BenchmarkAblationMinHashK(b *testing.B) {
	o := benchAccOpts()
	o.Queries = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMinHashK(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationImplOverhead compares declarative vs native query time.
func BenchmarkAblationImplOverhead(b *testing.B) {
	o := benchPerfOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationImplOverhead(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQSweep extends the §5.3.3 q study to q ∈ {1,2,3,4}.
func BenchmarkAblationQSweep(b *testing.B) {
	o := benchAccOpts()
	o.Queries = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationQSweep(o); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro-benchmarks: per-predicate query latency on the facade ----

func benchPredicate(b *testing.B, name string, declarative bool) {
	names := CompanyNames(1000, 1)
	records := make([]Record, len(names))
	for i, n := range names {
		records[i] = Record{TID: i + 1, Text: n}
	}
	cfg := DefaultConfig()
	var p Predicate
	var err error
	if declarative {
		p, err = NewDeclarative(name, records, cfg)
	} else {
		p, err = New(name, records, cfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	query := names[17]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Select(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectNativeBM25(b *testing.B)      { benchPredicate(b, "BM25", false) }
func BenchmarkSelectNativeJaccard(b *testing.B)   { benchPredicate(b, "Jaccard", false) }
func BenchmarkSelectNativeHMM(b *testing.B)       { benchPredicate(b, "HMM", false) }
func BenchmarkSelectNativeLM(b *testing.B)        { benchPredicate(b, "LM", false) }
func BenchmarkSelectNativeCosine(b *testing.B)    { benchPredicate(b, "Cosine", false) }
func BenchmarkSelectNativeEdit(b *testing.B)      { benchPredicate(b, "EditDistance", false) }
func BenchmarkSelectNativeSoftTFIDF(b *testing.B) { benchPredicate(b, "SoftTFIDF", false) }
func BenchmarkSelectNativeGESJaccard(b *testing.B) {
	benchPredicate(b, "GESJaccard", false)
}

func BenchmarkSelectDeclarativeBM25(b *testing.B)    { benchPredicate(b, "BM25", true) }
func BenchmarkSelectDeclarativeJaccard(b *testing.B) { benchPredicate(b, "Jaccard", true) }
func BenchmarkSelectDeclarativeHMM(b *testing.B)     { benchPredicate(b, "HMM", true) }
func BenchmarkSelectDeclarativeLM(b *testing.B)      { benchPredicate(b, "LM", true) }

// ---- shared-corpus preprocessing (the Corpus API acceptance benchmark) ----

func corpusBenchRecords(n int) []Record {
	titles := DBLPTitles(n, 11)
	records := make([]Record, len(titles))
	for i, title := range titles {
		records[i] = Record{TID: i + 1, Text: title}
	}
	return records
}

// BenchmarkPreprocessThirteenIndependent builds the full predicate suite
// the pre-corpus way: thirteen New calls, each re-tokenizing the 5000-record
// relation and rebuilding its own statistics.
func BenchmarkPreprocessThirteenIndependent(b *testing.B) {
	records := corpusBenchRecords(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range PredicateNames() {
			if _, err := New(name, records); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPreprocessThirteenShared builds the same suite through one
// shared Corpus: a single tokenization/statistics pass plus thirteen cheap
// attaches. The acceptance bar is ≥5× less total preprocessing time than
// the independent benchmark above.
func BenchmarkPreprocessThirteenShared(b *testing.B) {
	records := corpusBenchRecords(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := OpenCorpus(records)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range PredicateNames() {
			if _, err := c.Predicate(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- batch probing and top-k push-down (the options API) ----

func dblpPredicate(b *testing.B, size int) (Predicate, []string) {
	b.Helper()
	titles := DBLPTitles(size, 7)
	records := make([]Record, len(titles))
	for i, title := range titles {
		records[i] = Record{TID: i + 1, Text: title}
	}
	p, err := New("BM25", records)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 100)
	for i := range queries {
		queries[i] = titles[(i*37)%len(titles)]
	}
	return p, queries
}

func benchSelectBatch(b *testing.B, workers int) {
	p, queries := dblpPredicate(b, 2000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectBatch(ctx, p, queries, Workers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectBatchWorkers1 is the sequential baseline of the batch API.
func BenchmarkSelectBatchWorkers1(b *testing.B) { benchSelectBatch(b, 1) }

// BenchmarkSelectBatchWorkersMax probes the same batch with a
// GOMAXPROCS-sized worker pool.
func BenchmarkSelectBatchWorkersMax(b *testing.B) {
	benchSelectBatch(b, runtime.GOMAXPROCS(0))
}

// BenchmarkSelectFullSort ranks the entire candidate set and truncates to
// ten matches afterwards — the pre-push-down TopK path.
func BenchmarkSelectFullSort(b *testing.B) {
	p, queries := dblpPredicate(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := p.Select(queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) > 10 {
			ms = ms[:10]
		}
		_ = ms
	}
}

// BenchmarkSelectHeapTopK pushes Limit(10) down into the predicate, which
// keeps a 10-bounded heap instead of sorting the full candidate set.
func BenchmarkSelectHeapTopK(b *testing.B) {
	p, queries := dblpPredicate(b, 5000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectCtx(ctx, p, queries[i%len(queries)], Limit(10)); err != nil {
			b.Fatal(err)
		}
	}
}
