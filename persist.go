package approxsel

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// This file is the public face of approxstore, the durable persistence
// layer: a corpus saves as a versioned binary snapshot segment (records,
// interned token tables, posting lists, collection statistics, bound
// columns, epoch — floats serialized bit-for-bit) plus an epoch-stamped
// write-ahead log of the mutations applied since. A loaded corpus is
// bit-identical to the one that was saved and then mutated: same epoch,
// same scores, same tie order, for every predicate.
//
// Two usage shapes:
//
//	// One-shot: save now, restore later (mutations in between are lost).
//	approxsel.SaveCorpus(dir, corpus)
//	corpus, err := approxsel.LoadCorpus(dir)
//
//	// Durable: load-or-build, with every mutation write-ahead logged.
//	corpus, err := approxsel.OpenCorpus(records, approxsel.WithDataDir(dir))
//	defer corpus.CloseStore()
//	corpus.Insert(...)       // acknowledged only after the WAL took it
//	corpus.Checkpoint()      // fresh segment at the current epoch, WAL truncated

// WithDataDir makes OpenCorpus (and OpenShardedCorpus) durable under the
// given directory: an existing approxstore there is loaded instead of
// building from the records argument (the stored configuration and — for
// sharded corpora — shard count win), a fresh directory is seeded from the
// records, and either way every later mutation is write-ahead logged and
// acknowledged only once the log has taken it.
func WithDataDir(dir string) BuildOption {
	return buildOpt(func(s *core.BuildSettings) { s.DataDir = dir })
}

// StoreStats describes the durable state of a corpus opened with
// WithDataDir (or restored by LoadCorpus, reporting its load).
type StoreStats struct {
	// Dir is the data directory (the root directory for a sharded corpus).
	Dir string
	// SnapshotEpochs is the per-shard epoch vector of the segments a cold
	// start would load; a plain Corpus reports one entry.
	SnapshotEpochs []uint64
	// SnapshotBytes is the total on-disk size of those segments.
	SnapshotBytes int64
	// WALEntries counts the mutation batches currently logged across all
	// shards; they replay on the next cold start, and a Checkpoint resets
	// the count to zero.
	WALEntries int
	// LastLoadDur is how long the last cold start (segment decode + WAL
	// replay, slowest shard) took; zero for a freshly created store.
	LastLoadDur time.Duration
}

// SaveCorpus writes dir as a durable snapshot of the corpus's current
// state, replacing any store already there. The corpus itself is left
// untouched — it keeps mutating in memory without logging; use
// OpenCorpus(records, WithDataDir(dir)) for a corpus whose mutations
// persist continuously.
func SaveCorpus(dir string, c *Corpus) error {
	if c == nil {
		return fmt.Errorf("approxsel: SaveCorpus of a nil corpus")
	}
	return store.Save(dir, c.c)
}

// LoadCorpus restores the corpus saved in dir: the newest valid snapshot
// segment, then WAL replay up to the last acknowledged epoch. The loaded
// corpus is bit-identical to the one that was saved and then mutated —
// same epoch, same scores, same tie order — and is purely in-memory
// afterwards (its mutations are not logged); open with WithDataDir to
// keep logging.
func LoadCorpus(dir string) (*Corpus, error) {
	c, _, err := store.Load(dir)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c, hub: wireWatchHub(c, c.Records(), c.Epoch(), nil)}, nil
}

// PartialMutationError reports a multi-shard mutation batch that failed
// after some shards had already applied (and durably logged) their
// sub-batches. The batch is neither fully applied nor cleanly retryable:
// the listed shards hold their part of it, the others none. It only
// arises from persistence or internal failures — validation runs against
// every shard before anything applies.
type PartialMutationError struct {
	// Err is the failure that stopped the batch.
	Err error
	// Applied lists the shards whose sub-batches landed.
	Applied []int
}

func (e *PartialMutationError) Error() string {
	return fmt.Sprintf("approxsel: mutation batch partially applied (shards %v landed): %v", e.Applied, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *PartialMutationError) Unwrap() error { return e.Err }

// ---- durable Corpus methods ----

// Persistent reports whether the corpus is attached to a data directory
// (opened with WithDataDir), i.e. whether its mutations are write-ahead
// logged.
func (c *Corpus) Persistent() bool { return c.log != nil }

// Checkpoint writes a fresh snapshot segment at the corpus's current epoch
// and truncates the write-ahead log, atomically with respect to concurrent
// mutations (selections proceed unaffected). It errors on a corpus without
// a data directory.
func (c *Corpus) Checkpoint() error {
	if c.log == nil {
		return fmt.Errorf("approxsel: Checkpoint on a corpus without a data directory")
	}
	return c.log.Checkpoint()
}

// SyncStore flushes logged mutations to stable storage. Appends survive a
// process crash as soon as they are acknowledged; Sync hardens them
// against machine crashes too. It is a no-op on a corpus without a data
// directory.
func (c *Corpus) SyncStore() error {
	if c.log == nil {
		return nil
	}
	return c.log.Sync()
}

// CloseStore fsyncs and closes the write-ahead log. Further mutations on
// the corpus fail (nothing can land unlogged after a graceful shutdown);
// selections keep working. It is a no-op on a corpus without a data
// directory.
func (c *Corpus) CloseStore() error {
	if c.log == nil {
		return nil
	}
	return c.log.Close()
}

// StoreStats returns the durable-state counters; ok is false for a corpus
// without a data directory.
func (c *Corpus) StoreStats() (StoreStats, bool) {
	if c.log == nil {
		return StoreStats{}, false
	}
	st := c.log.Stats()
	return StoreStats{
		Dir:            st.Dir,
		SnapshotEpochs: []uint64{st.SnapshotEpoch},
		SnapshotBytes:  st.SnapshotBytes,
		WALEntries:     st.WALEntries,
		LastLoadDur:    st.LastLoadDur,
	}, true
}

// ---- durable ShardedCorpus methods ----

// Persistent reports whether the sharded corpus is attached to a data
// directory (opened with WithDataDir).
func (s *ShardedCorpus) Persistent() bool { return s.root != "" }

// Checkpoint writes a fresh snapshot segment per shard and truncates every
// shard's write-ahead log, then rewrites the manifest with the checkpointed
// shard-epoch vector. Mutations are frozen for the duration (the manifest
// must name one consistent global version); selections proceed unaffected.
func (s *ShardedCorpus) Checkpoint() error {
	if s.root == "" {
		return fmt.Errorf("approxsel: Checkpoint on a corpus without a data directory")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := core.RunJobs(context.Background(), len(s.logs), 0, func(i int) error {
		return s.logs[i].Checkpoint()
	}); err != nil {
		return err
	}
	return store.WriteManifest(s.root, store.Manifest{Version: 1, Shards: len(s.shards), Epochs: s.Epochs(), Seq: s.seq.Load()})
}

// SyncStore flushes every shard's logged mutations to stable storage. It is
// a no-op on a corpus without a data directory.
func (s *ShardedCorpus) SyncStore() error {
	for _, l := range s.logs {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// CloseStore fsyncs and closes every shard's write-ahead log. Further
// mutations fail; selections keep working. It is a no-op on a corpus
// without a data directory.
//
// The close is serialized behind the cross-shard mutation lock: without
// it, a mutation racing the drain could land (and fsync) on the shards
// whose logs were still open while the rest rejected its sub-batches —
// a durably half-applied batch that was never acknowledged. Behind the
// lock, every mutation either completes before the first log seals or
// fails on every shard.
func (s *ShardedCorpus) CloseStore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StoreStats returns the durable-state counters aggregated across shards;
// ok is false for a corpus without a data directory.
func (s *ShardedCorpus) StoreStats() (StoreStats, bool) {
	if s.root == "" {
		return StoreStats{}, false
	}
	out := StoreStats{Dir: s.root, SnapshotEpochs: make([]uint64, len(s.logs))}
	for i, l := range s.logs {
		st := l.Stats()
		out.SnapshotEpochs[i] = st.SnapshotEpoch
		out.SnapshotBytes += st.SnapshotBytes
		out.WALEntries += st.WALEntries
		if st.LastLoadDur > out.LastLoadDur {
			out.LastLoadDur = st.LastLoadDur
		}
	}
	return out, true
}
