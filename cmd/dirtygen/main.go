// Command dirtygen generates benchmark datasets with the UIS-style dirty
// data generator (§5.1) and writes them as tab-separated values:
//
//	tid <TAB> cluster <TAB> text
//
// The cluster column is the ground truth for duplicate detection.
//
// Usage:
//
//	dirtygen -source company -size 5000 -clean 500 -erroneous 0.9 -extent 0.3
//	dirtygen -source dblp -size 10000 -dist zipfian > dblp10k.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/datasets"
	"repro/internal/dirty"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the generator with explicit arguments and streams, so tests
// can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dirtygen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	source := fs.String("source", "company", "clean source: company|dblp")
	size := fs.Int("size", 5000, "total tuples to generate")
	clean := fs.Int("clean", 500, "clean tuples to seed clusters")
	distName := fs.String("dist", "uniform", "duplicate distribution: uniform|zipfian|poisson")
	erroneous := fs.Float64("erroneous", 0.5, "fraction of duplicates receiving errors")
	extent := fs.Float64("extent", 0.2, "fraction of characters edited per erroneous duplicate")
	swap := fs.Float64("swap", 0.2, "fraction of adjacent word pairs swapped")
	abbr := fs.Float64("abbr", 0.5, "fraction of erroneous duplicates with abbreviation errors")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cleanRows []string
	var abbrs [][2]string
	switch *source {
	case "company":
		cleanRows = datasets.CompanyNames(maxInt(*clean*2, 400), *seed)
		abbrs = datasets.Abbreviations()
	case "dblp":
		cleanRows = datasets.DBLPTitles(maxInt(*clean*2, 400), *seed)
	default:
		fmt.Fprintf(stderr, "dirtygen: unknown source %q\n", *source)
		return 2
	}

	var dist dirty.Distribution
	switch *distName {
	case "uniform":
		dist = dirty.Uniform
	case "zipfian":
		dist = dirty.Zipfian
	case "poisson":
		dist = dirty.Poisson
	default:
		fmt.Fprintf(stderr, "dirtygen: unknown distribution %q\n", *distName)
		return 2
	}

	ds, err := dirty.Generate(cleanRows, abbrs, dirty.Params{
		Size: *size, NumClean: *clean, Dist: dist,
		ErroneousPct: *erroneous, ErrorExtent: *extent,
		TokenSwapPct: *swap, AbbrPct: *abbr, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "dirtygen: %v\n", err)
		return 1
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	for _, r := range ds.Records {
		fmt.Fprintf(w, "%d\t%d\t%s\n", r.TID, ds.Cluster[r.TID], r.Text)
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
