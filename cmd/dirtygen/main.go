// Command dirtygen generates benchmark datasets with the UIS-style dirty
// data generator (§5.1) and writes them as tab-separated values:
//
//	tid <TAB> cluster <TAB> text
//
// The cluster column is the ground truth for duplicate detection.
//
// Usage:
//
//	dirtygen -source company -size 5000 -clean 500 -erroneous 0.9 -extent 0.3
//	dirtygen -source dblp -size 10000 -dist zipfian > dblp10k.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/dirty"
)

func main() {
	source := flag.String("source", "company", "clean source: company|dblp")
	size := flag.Int("size", 5000, "total tuples to generate")
	clean := flag.Int("clean", 500, "clean tuples to seed clusters")
	distName := flag.String("dist", "uniform", "duplicate distribution: uniform|zipfian|poisson")
	erroneous := flag.Float64("erroneous", 0.5, "fraction of duplicates receiving errors")
	extent := flag.Float64("extent", 0.2, "fraction of characters edited per erroneous duplicate")
	swap := flag.Float64("swap", 0.2, "fraction of adjacent word pairs swapped")
	abbr := flag.Float64("abbr", 0.5, "fraction of erroneous duplicates with abbreviation errors")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	var cleanRows []string
	var abbrs [][2]string
	switch *source {
	case "company":
		cleanRows = datasets.CompanyNames(maxInt(*clean*2, 400), *seed)
		abbrs = datasets.Abbreviations()
	case "dblp":
		cleanRows = datasets.DBLPTitles(maxInt(*clean*2, 400), *seed)
	default:
		fmt.Fprintf(os.Stderr, "dirtygen: unknown source %q\n", *source)
		os.Exit(2)
	}

	var dist dirty.Distribution
	switch *distName {
	case "uniform":
		dist = dirty.Uniform
	case "zipfian":
		dist = dirty.Zipfian
	case "poisson":
		dist = dirty.Poisson
	default:
		fmt.Fprintf(os.Stderr, "dirtygen: unknown distribution %q\n", *distName)
		os.Exit(2)
	}

	ds, err := dirty.Generate(cleanRows, abbrs, dirty.Params{
		Size: *size, NumClean: *clean, Dist: dist,
		ErroneousPct: *erroneous, ErrorExtent: *extent,
		TokenSwapPct: *swap, AbbrPct: *abbr, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dirtygen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, r := range ds.Records {
		fmt.Fprintf(w, "%d\t%d\t%s\n", r.TID, ds.Cluster[r.TID], r.Text)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
