package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestRunGeneratesTSV runs the generator end to end on a tiny relation and
// validates the TSV contract: size rows, unique TIDs, cluster ground truth
// referring to clean tuples.
func TestRunGeneratesTSV(t *testing.T) {
	for _, source := range []string{"company", "dblp"} {
		var out, errOut bytes.Buffer
		code := run([]string{
			"-source", source, "-size", "60", "-clean", "12", "-seed", "7",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", source, code, errOut.String())
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		if len(lines) != 60 {
			t.Fatalf("%s: %d rows, want 60", source, len(lines))
		}
		tids := map[int]bool{}
		for _, line := range lines {
			fields := strings.SplitN(line, "\t", 3)
			if len(fields) != 3 {
				t.Fatalf("%s: malformed row %q", source, line)
			}
			tid, err := strconv.Atoi(fields[0])
			if err != nil {
				t.Fatalf("%s: bad tid in %q", source, line)
			}
			if tids[tid] {
				t.Fatalf("%s: duplicate tid %d", source, tid)
			}
			tids[tid] = true
			if _, err := strconv.Atoi(fields[1]); err != nil {
				t.Fatalf("%s: bad cluster in %q", source, line)
			}
			if fields[2] == "" {
				t.Fatalf("%s: empty text in %q", source, line)
			}
		}
	}
}

// TestRunDistributions smoke-tests every duplicate distribution.
func TestRunDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "zipfian", "poisson"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-dist", dist, "-size", "30", "-clean", "10"}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", dist, code, errOut.String())
		}
	}
}

// TestRunBadFlags pins the error paths.
func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-source", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown source: exit %d", code)
	}
	if code := run([]string{"-dist", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown distribution: exit %d", code)
	}
	if code := run([]string{"-size", "10", "-clean", "20"}, &out, &errOut); code == 0 {
		t.Fatal("size < clean must fail")
	}
}
