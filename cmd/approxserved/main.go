// Command approxserved serves approximate selection over HTTP/JSON: it
// loads one relation into a sharded, cache-accelerated corpus and exposes
// /v1/select, /v1/batch, /v1/join, the mutation endpoints /v1/insert,
// /v1/delete and /v1/upsert, standing queries (/v1/watch: SSE or long-poll
// streams of incremental join events), runtime corpus management
// (/v1/corpora) and observability (/v1/stats, /healthz).
//
// Usage:
//
//	approxserved                                  # serve dblp:5000 on :8080
//	approxserved -addr :9090 -dataset company:2000 -shards 4
//	approxserved -dataset titles.txt              # one record per line
//	approxserved -data /var/lib/approxsel         # durable: load-on-start, WAL, /v1/snapshot
//	approxserved -selftest                        # run the bundled load test
//	approxserved -selftest -benchjson out/        # ... and write BENCH_serve.json
//	approxserved -node-id n0 -peers n0=http://h0:8080,n1=http://h1:8080,n2=http://h2:8080
//	                                              # replicated serving (approxcluster)
//	approxserved -node-id n2 -peers ... -join     # join empty; corpora arrive from the leader
//	approxserved -node-id n0 -peers ... -chaos-seed 7 -chaos-rules @rules.json
//	                                              # fault injection on peer traffic (POST /chaos/rules to switch)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	approxsel "repro"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/server/loadtest"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon with explicit context, arguments and streams, so
// tests can drive it end to end and cancel it for graceful shutdown.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("approxserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (use :0 for a random port)")
	portfile := fs.String("portfile", "", "write the resolved listen address to this file once serving")
	dataset := fs.String("dataset", "dblp:5000", "relation to load: dblp:N, company:N, or a file with one record per line")
	corpusName := fs.String("corpus", "main", "name of the served corpus")
	dataDir := fs.String("data", "", "data directory for durable corpora (load-on-start, WAL on mutations, /v1/snapshot checkpoints; empty = in-memory)")
	shards := fs.Int("shards", 0, "shards per corpus (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 0, "result-cache entries per corpus (0 = default 4096, negative disables)")
	maxInFlight := fs.Int("maxinflight", 0, "max concurrently admitted requests (0 = 16x GOMAXPROCS)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	workers := fs.Int("workers", 0, "batch/join fan-out workers (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "synthetic dataset generation seed")
	debugAddr := fs.String("debug-addr", "", "listen address for the debug server (net/http/pprof + /metrics); empty disables")
	debugPortfile := fs.String("debug-portfile", "", "write the debug server's resolved listen address to this file")
	traceSample := fs.Int("trace-sample", 16, "trace one in every N requests (1 = all, negative disables tracing)")
	slowlogEntries := fs.Int("slowlog", 32, "slow-query log capacity (top-N slowest traced requests, GET /v1/slowlog)")
	accessLog := fs.String("access-log", "", "access log destination: a file path, \"-\" for stdout, empty disables")
	nodeID := fs.String("node-id", "", "cluster: this node's ID (enables replication; must appear in -peers)")
	peersSpec := fs.String("peers", "", "cluster: comma-separated id=url pairs, including this node")
	join := fs.Bool("join", false, "cluster: start empty and receive corpora from the leader (skips -dataset)")
	chaosSeed := fs.Int64("chaos-seed", 0, "chaos: enable fault injection on peer traffic with this RNG seed (cluster mode only; exposes GET/POST /chaos/rules)")
	chaosRules := fs.String("chaos-rules", "", "chaos: initial fault rules as inline JSON, or @file to read them from a file")

	selftest := fs.Bool("selftest", false, "run the bundled load test instead of serving")
	ltRecords := fs.Int("records", 5000, "selftest: relation size")
	ltRequests := fs.Int("requests", 2000, "selftest: timed serve-path requests")
	ltDistinct := fs.Int("distinct", 200, "selftest: distinct queries in the mix")
	ltZipf := fs.Float64("zipf", 1.3, "selftest: zipf skew of the query mix (must be > 1)")
	ltPredicate := fs.String("predicate", "BM25", "selftest: probed predicate")
	ltLimit := fs.Int("limit", 10, "selftest: per-query top-k")
	benchJSON := fs.String("benchjson", "", "selftest: directory to write BENCH_serve.json")
	minSpeedup := fs.Float64("minspeedup", 0, "selftest: fail unless served/naive QPS ratio reaches this")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *selftest {
		report, err := loadtest.Run(loadtest.Options{
			Records:      *ltRecords,
			Requests:     *ltRequests,
			Distinct:     *ltDistinct,
			ZipfS:        *ltZipf,
			Predicate:    *ltPredicate,
			Limit:        *ltLimit,
			Shards:       *shards,
			CacheEntries: *cacheEntries,
			Seed:         *seed,
		})
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: selftest: %v\n", err)
			return 1
		}
		report.Print(stdout)
		if *benchJSON != "" {
			if err := report.WriteJSON(*benchJSON); err != nil {
				fmt.Fprintf(stderr, "approxserved: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s/BENCH_serve.json\n", *benchJSON)
		}
		if !report.DifferentialOK {
			fmt.Fprintln(stderr, "approxserved: selftest: cached results diverged from uncached computation")
			return 1
		}
		if *minSpeedup > 0 && report.Speedup < *minSpeedup {
			fmt.Fprintf(stderr, "approxserved: selftest: speedup %.2fx below required %.2fx\n",
				report.Speedup, *minSpeedup)
			return 1
		}
		return 0
	}

	var alog io.Writer
	switch *accessLog {
	case "":
	case "-":
		alog = stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
		alog = f
		defer f.Close()
	}

	srv := server.New(server.Config{
		Shards:         *shards,
		CacheEntries:   *cacheEntries,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		Workers:        *workers,
		DataDir:        *dataDir,
		TraceSample:    *traceSample,
		SlowLogEntries: *slowlogEntries,
		AccessLog:      alog,
	})
	var node *cluster.Node
	var inj *chaos.Injector
	if (*chaosSeed != 0 || *chaosRules != "") && *nodeID == "" {
		fmt.Fprintln(stderr, "approxserved: -chaos-seed/-chaos-rules require cluster mode (-node-id and -peers)")
		return 2
	}
	if *nodeID != "" || *peersSpec != "" {
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 2
		}
		var client *http.Client
		if *chaosSeed != 0 || *chaosRules != "" {
			// The injector sits on both sides of the peer mesh: every RPC
			// this node sends goes through Transport, every RPC it receives
			// through the Inbound wrapper mounted below. Client traffic
			// (no chaos peer header) is never touched.
			inj = chaos.New(*chaosSeed)
			inj.SetPeers(peers)
			spec := *chaosRules
			if strings.HasPrefix(spec, "@") {
				data, err := os.ReadFile(spec[1:])
				if err != nil {
					fmt.Fprintf(stderr, "approxserved: -chaos-rules: %v\n", err)
					return 2
				}
				spec = string(data)
			}
			rules, err := chaos.ParseRules(spec)
			if err != nil {
				fmt.Fprintf(stderr, "approxserved: -chaos-rules: %v\n", err)
				return 2
			}
			inj.SetRules(rules)
			client = &http.Client{Transport: inj.Transport(*nodeID, nil)}
		}
		node, err = cluster.NewNode(cluster.Config{
			ID:      *nodeID,
			Peers:   peers,
			DataDir: *dataDir,
			Backend: srv.ClusterBackend(),
			Client:  client,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, "approxserved: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 2
		}
		srv.AttachCluster(node)
	}
	// A data directory restores every stored corpus first — including ones
	// created at runtime through POST /v1/corpora in a previous life. Only
	// when the named corpus is not among them is the -dataset loaded and
	// parsed at all: the fast-restart path never touches the raw relation.
	if *dataDir != "" {
		names, err := srv.LoadStoredCorpora()
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
		for _, n := range names {
			fmt.Fprintf(stdout, "approxserved: restored corpus %q from %s\n", n, *dataDir)
		}
	}
	// A joining replica starts empty: its corpora arrive from the leader
	// through the snapshot + WAL-tail catch-up path, never from -dataset —
	// that is the only way every replica ends up bit-identical.
	if !*join && !srv.HasCorpus(*corpusName) {
		records, err := loadDataset(*dataset, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
		if err := srv.AddCorpus(*corpusName, records); err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "approxserved: %v\n", err)
		return 1
	}
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
	}
	if names := srv.ClusterBackend().Corpora(); len(names) > 0 {
		fmt.Fprintf(stdout, "approxserved: serving corpora %q on %s\n", names, ln.Addr())
	} else {
		fmt.Fprintf(stdout, "approxserved: serving on %s (no local corpora yet; awaiting the cluster leader)\n", ln.Addr())
	}

	// The debug server mounts the profiling endpoints (and a second /metrics
	// for scrapers that cannot reach the serving port) on its own listener,
	// so profiling traffic is never admitted against MaxInFlight and can be
	// firewalled separately from the data plane.
	var dbg *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("GET /metrics", srv.Handler())
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
		if *debugPortfile != "" {
			if err := os.WriteFile(*debugPortfile, []byte(dln.Addr().String()), 0o644); err != nil {
				fmt.Fprintf(stderr, "approxserved: %v\n", err)
				return 1
			}
		}
		dbg = &http.Server{Handler: dmux}
		go func() { _ = dbg.Serve(dln) }()
		fmt.Fprintf(stdout, "approxserved: debug server (pprof, /metrics) on %s\n", dln.Addr())
	}

	handler := srv.Handler()
	if inj != nil {
		// The chaos mount wraps the whole serving surface: peer-originated
		// RPCs pass the injector's Inbound gate, and /chaos/rules switches
		// the active rule set at runtime without a restart.
		cmux := http.NewServeMux()
		cmux.HandleFunc("GET /chaos/rules", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(inj.Rules())
		})
		cmux.HandleFunc("POST /chaos/rules", func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			rules, err := chaos.ParseRules(string(body))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			inj.SetRules(rules)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"rules\":%d}\n", len(rules))
		})
		cmux.Handle("/", inj.Inbound(*nodeID, handler))
		handler = cmux
		fmt.Fprintf(stdout, "approxserved: chaos injection armed (seed %d, %d initial rules)\n", *chaosSeed, len(inj.Rules()))
	}
	hs := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	if node != nil {
		// The node's RPC surface rides the server's own /cluster/ mount, so
		// elections and replication start only once the listener is up.
		node.Start()
		fmt.Fprintf(stdout, "approxserved: cluster node %q up, peers %s\n", *nodeID, *peersSpec)
	}
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "approxserved: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		// Graceful shutdown: close watch streams first (each client gets a
		// final epoch frame, and Shutdown would otherwise wait on them
		// forever), then stop accepting and drain in-flight requests, then
		// fsync and seal the write-ahead logs — the last acknowledged
		// mutation is on stable storage before the process exits.
		if node != nil {
			// Stop election and replication loops first: nothing new is
			// pulled or applied while the store drains below.
			node.Stop()
		}
		srv.DrainWatches()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(stderr, "approxserved: shutdown: %v\n", err)
			return 1
		}
		if err := srv.CloseStores(); err != nil {
			fmt.Fprintf(stderr, "approxserved: store close: %v\n", err)
			return 1
		}
		if dbg != nil {
			_ = dbg.Shutdown(shutdownCtx)
		}
		if *dataDir != "" {
			fmt.Fprintln(stdout, "approxserved: store synced")
		}
		fmt.Fprintln(stdout, "approxserved: drained, bye")
	}
	return 0
}

// parsePeers parses the -peers spec: comma-separated id=url pairs, e.g.
// "n0=http://127.0.0.1:8080,n1=http://127.0.0.1:8081".
func parsePeers(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("cluster mode needs -peers (id=url,...)")
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer ID %q in -peers", id)
		}
		peers[id] = url
	}
	return peers, nil
}

// loadDataset parses the -dataset spec: dblp:N and company:N generate the
// synthetic relations of the benchmark (Table 5.1 statistics); anything
// else is a file path read as one record text per line (TIDs 1..n).
func loadDataset(spec string, seed int64) ([]approxsel.Record, error) {
	if kind, nStr, ok := strings.Cut(spec, ":"); ok {
		n, err := strconv.Atoi(nStr)
		if err == nil && n > 0 {
			switch kind {
			case "dblp":
				return textsToRecords(approxsel.DBLPTitles(n, seed)), nil
			case "company":
				return textsToRecords(approxsel.CompanyNames(n, seed)), nil
			}
		}
		if kind == "dblp" || kind == "company" {
			return nil, fmt.Errorf("bad dataset spec %q (want %s:N with N > 0)", spec, kind)
		}
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", spec, err)
	}
	var texts []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			texts = append(texts, line)
		}
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("dataset %q: no records", spec)
	}
	return textsToRecords(texts), nil
}

func textsToRecords(texts []string) []approxsel.Record {
	records := make([]approxsel.Record, len(texts))
	for i, t := range texts {
		records[i] = approxsel.Record{TID: i + 1, Text: t}
	}
	return records
}
