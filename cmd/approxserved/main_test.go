package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	approxsel "repro"
)

// TestServeEndToEnd boots the daemon on a random port, talks to it over
// HTTP — select, insert, cached re-select — checks the stats hit rate, then
// cancels the context and expects a graceful drain.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	portfile := filepath.Join(dir, "addr.txt")
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-portfile", portfile,
			"-dataset", "company:60",
			"-shards", "2",
		}, &stdout, &stderr)
	}()

	var addr string
	for i := 0; i < 100; i++ {
		if data, err := os.ReadFile(portfile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("portfile never appeared; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	postJSON := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %v", path, resp.StatusCode, out)
		}
		return out
	}

	sel := `{"corpus":"main","predicate":"BM25","query":"international business machines","limit":5}`
	first := postJSON("/v1/select", sel)
	if first["cached"] != false {
		t.Fatalf("first select must miss: %v", first)
	}
	second := postJSON("/v1/select", sel)
	if second["cached"] != true {
		t.Fatalf("second select must hit: %v", second)
	}
	postJSON("/v1/insert", `{"corpus":"main","records":[{"tid":9001,"text":"International Business Machines Corporation"}]}`)
	third := postJSON("/v1/select", sel)
	if third["cached"] != false {
		t.Fatalf("select after insert must miss: %v", third)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cache struct {
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache.HitRate <= 0 {
		t.Fatalf("hit rate must be positive after a cached re-select: %v", stats.Cache.HitRate)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Fatalf("graceful shutdown not reported: %s", stdout.String())
	}
}

// TestDrainPersistsLastAckedEpoch is the graceful-drain regression test:
// the daemon runs with a data directory while a client streams mutations,
// the run is killed (SIGTERM context cancellation) mid-stream, and the
// store — reopened in a fresh corpus, exactly as the next process start
// would — must replay to the epoch vector of the last acknowledged
// mutation. Acknowledged-then-lost and unacknowledged-then-kept are both
// failures.
func TestDrainPersistsLastAckedEpoch(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	portfile := filepath.Join(dir, "addr.txt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-portfile", portfile,
			"-dataset", "company:40",
			"-shards", "2",
			"-data", dataDir,
		}, &stdout, &stderr)
	}()
	var addr string
	for i := 0; i < 100; i++ {
		if data, err := os.ReadFile(portfile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("portfile never appeared; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	// Stream mutations; remember the epoch vector of every acknowledged one.
	var lastAcked []uint64
	acked := 0
	for i := 0; ; i++ {
		body := fmt.Sprintf(`{"corpus":"main","records":[{"tid":%d,"text":"Streamed Mutation %d Inc"}]}`, 9000+i, i)
		resp, err := http.Post(base+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			break // the listener died mid-stream: everything acked so far must survive
		}
		var out struct {
			Epochs []uint64 `json:"epochs"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&out)
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusOK || decodeErr != nil {
			break
		}
		lastAcked = out.Epochs
		acked++
		if acked == 5 {
			cancel() // SIGTERM lands mid-stream; later inserts race the drain
		}
		if acked == 25 {
			cancel()
			break
		}
	}
	if acked < 5 {
		t.Fatalf("only %d mutations acknowledged; stderr: %s", acked, stderr.String())
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
	if !strings.Contains(stdout.String(), "store synced") {
		t.Fatalf("drain must report the store sync: %s", stdout.String())
	}

	// Reopen the store exactly like the next cold start would.
	restored, err := approxsel.OpenShardedCorpus(nil, 0, approxsel.WithDataDir(filepath.Join(dataDir, "main")))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.CloseStore()
	n, epochs := restored.State()
	if len(epochs) != len(lastAcked) {
		t.Fatalf("restored %d shards, acked vector %v", len(epochs), lastAcked)
	}
	// Every acknowledged mutation must survive. An insert applied during the
	// drain whose response was lost may legitimately put the store slightly
	// ahead of the last ack — never behind it.
	var advances uint64
	for i := range epochs {
		if epochs[i] < lastAcked[i] {
			t.Fatalf("replay reached %v, behind last acked %v", epochs, lastAcked)
		}
		advances += epochs[i]
	}
	if n < 40+acked {
		t.Fatalf("restored %d records after %d acked inserts over 40", n, acked)
	}
	// Each single-record insert advances exactly one shard epoch, so the
	// restored state must be internally consistent: epoch advances == rows
	// gained.
	if advances != uint64(n-40) {
		t.Fatalf("restored %d extra records but %d epoch advances", n-40, advances)
	}
}

// TestSelftest runs the bundled load test at a tiny scale and checks the
// BENCH_serve.json artifact.
func TestSelftest(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-selftest",
		"-records", "150",
		"-requests", "80",
		"-distinct", "15",
		"-shards", "2",
		"-benchjson", dir,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("selftest exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "speedup") {
		t.Fatalf("selftest summary missing: %s", stdout.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Entries []struct {
			Path string  `json:"path"`
			QPS  float64 `json:"qps"`
		} `json:"entries"`
		DifferentialOK bool `json:"differential_ok"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) != 2 || !report.DifferentialOK {
		t.Fatalf("report: %s", data)
	}
}

// TestLoadDataset covers the dataset spec parser.
func TestLoadDataset(t *testing.T) {
	if rs, err := loadDataset("dblp:30", 1); err != nil || len(rs) != 30 {
		t.Fatalf("dblp:30: %d %v", len(rs), err)
	}
	if rs, err := loadDataset("company:10", 1); err != nil || len(rs) != 10 {
		t.Fatalf("company:10: %d %v", len(rs), err)
	}
	if _, err := loadDataset("dblp:0", 1); err == nil {
		t.Fatal("dblp:0 must fail")
	}
	if _, err := loadDataset("/no/such/file", 1); err == nil {
		t.Fatal("missing file must fail")
	}
	f := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(f, []byte("alpha beta\n\n  gamma delta  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := loadDataset(f, 1)
	if err != nil || len(rs) != 2 || rs[1].Text != "gamma delta" {
		t.Fatalf("file dataset: %v %v", rs, err)
	}
	for i, r := range rs {
		if r.TID != i+1 {
			t.Fatalf("tids must be 1..n: %v", rs)
		}
	}
}

// TestBadFlags keeps flag errors at exit code 2.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-nosuchflag"}, &out, &out); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if code := run(context.Background(), []string{"-dataset", "dblp:x"}, &out, &out); code != 1 {
		t.Fatalf("bad dataset spec: exit %d", code)
	}
}

// TestDebugServer boots the daemon with a debug listener and full trace
// sampling, exercises a select, and checks the observability surface end
// to end: pprof and /metrics on the debug port, the access log, and a
// slow-query trace with the fan-out span tree on the serving port.
func TestDebugServer(t *testing.T) {
	dir := t.TempDir()
	portfile := filepath.Join(dir, "addr.txt")
	debugPortfile := filepath.Join(dir, "debug.txt")
	accessLog := filepath.Join(dir, "access.log")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-portfile", portfile,
			"-debug-addr", "127.0.0.1:0",
			"-debug-portfile", debugPortfile,
			"-trace-sample", "1",
			"-access-log", accessLog,
			"-dataset", "company:60",
			"-shards", "2",
		}, &stdout, &stderr)
	}()
	var addr, debugAddr string
	for i := 0; i < 100; i++ {
		a, _ := os.ReadFile(portfile)
		d, _ := os.ReadFile(debugPortfile)
		if len(a) > 0 && len(d) > 0 {
			addr, debugAddr = string(a), string(d)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" || debugAddr == "" {
		t.Fatalf("portfiles never appeared; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/select", "application/json",
		strings.NewReader(`{"corpus":"main","predicate":"BM25","query":"general electric","limit":5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("select response carries no X-Request-Id")
	}

	fetch := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
		}
		return string(body)
	}

	// /metrics on both the serving and the debug listener.
	for _, u := range []string{base + "/metrics", "http://" + debugAddr + "/metrics"} {
		if !strings.Contains(fetch(u), "approx_select_total 1") {
			t.Fatalf("%s missing approx_select_total", u)
		}
	}
	if len(fetch("http://"+debugAddr+"/debug/pprof/cmdline")) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}

	// The traced select is in the slow log with its span tree.
	var slow struct {
		Entries []struct {
			Name  string `json:"name"`
			Spans struct {
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"spans"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(fetch(base+"/v1/slowlog")), &slow); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range slow.Entries {
		if e.Name == "select" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no select trace in slowlog: %s", fetch(base+"/v1/slowlog"))
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	logData, err := os.ReadFile(accessLog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logData), "route=select") || !strings.Contains(string(logData), "status=200") {
		t.Fatalf("access log missing the select line: %s", logData)
	}
}
