// Command sqlshell is an interactive shell over the bundled SQL engine —
// the substrate the declarative predicates run on. It preloads a small
// company relation tokenized into 2-grams so the paper's scoring queries
// can be tried by hand:
//
//	$ go run ./cmd/sqlshell
//	sql> SELECT R1.tid, COUNT(*) AS score
//	     FROM base_tokens R1, query_tokens R2
//	     WHERE R1.token = R2.token GROUP BY R1.tid ORDER BY score DESC;
//
// Statements end with a semicolon; \q quits, \t lists tables.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/datasets"
	"repro/internal/sqldb"
	"repro/internal/strutil"
	"repro/internal/tokenize"
)

func main() {
	db := sqldb.New()
	if err := seed(db); err != nil {
		fmt.Fprintf(os.Stderr, "sqlshell: %v\n", err)
		os.Exit(1)
	}
	db.RegisterFunc("EDITSIM", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 || args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Float(strutil.EditSimilarity(args[0].AsString(), args[1].AsString())), nil
	})
	db.RegisterFunc("JAROWINKLER", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 || args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Float(strutil.JaroWinkler(args[0].AsString(), args[1].AsString())), nil
	})

	fmt.Println("sqldb shell — tables: base_table, base_tokens, query_tokens; UDFs: EDITSIM, JAROWINKLER")
	fmt.Println("end statements with ';'; \\t lists tables; \\q quits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		switch strings.TrimSpace(line) {
		case `\q`, "exit", "quit":
			return
		case `\t`:
			for _, t := range db.TableNames() {
				tab := db.Table(t)
				fmt.Printf("  %-20s %6d rows  (%s)\n", t, tab.NumRows(), strings.Join(tab.Columns(), ", "))
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt = "  -> "
			continue
		}
		prompt = "sql> "
		sqlText := pending.String()
		pending.Reset()
		run(db, sqlText)
	}
}

func run(db *sqldb.DB, sqlText string) {
	trimmed := strings.TrimSpace(sqlText)
	if strings.HasPrefix(strings.ToUpper(trimmed), "SELECT") {
		rows, err := db.Query(strings.TrimSuffix(trimmed, ";"))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(rows.Cols, " | "))
		limit := len(rows.Data)
		if limit > 50 {
			limit = 50
		}
		for _, r := range rows.Data[:limit] {
			cells := make([]string, len(r))
			for i, v := range r {
				cells[i] = v.AsString()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		if limit < len(rows.Data) {
			fmt.Printf("... (%d rows total)\n", len(rows.Data))
		}
		return
	}
	n, err := db.ExecScript(sqlText)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

// seed loads a small tokenized company relation so scoring SQL can be
// written immediately.
func seed(db *sqldb.DB) error {
	stmts := []string{
		"CREATE TABLE base_table (tid INT, string VARCHAR(255))",
		"CREATE TABLE base_tokens (tid INT, token VARCHAR(8))",
		"CREATE TABLE query_tokens (token VARCHAR(8))",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	names := datasets.CompanyNames(50, 1)
	var rows, tokRows [][]sqldb.Value
	for i, name := range names {
		tid := int64(i + 1)
		rows = append(rows, []sqldb.Value{sqldb.Int(tid), sqldb.String(name)})
		for _, g := range tokenize.QGrams(name, 2) {
			tokRows = append(tokRows, []sqldb.Value{sqldb.Int(tid), sqldb.String(g)})
		}
	}
	if err := db.BulkInsert("base_table", rows); err != nil {
		return err
	}
	if err := db.BulkInsert("base_tokens", tokRows); err != nil {
		return err
	}
	if err := db.CreateIndexOn("base_tokens", "token"); err != nil {
		return err
	}
	// Pre-fill query_tokens with the grams of the first company so a
	// scoring query works out of the box.
	var qRows [][]sqldb.Value
	for _, g := range tokenize.QGrams(names[0], 2) {
		qRows = append(qRows, []sqldb.Value{sqldb.String(g)})
	}
	return db.BulkInsert("query_tokens", qRows)
}
