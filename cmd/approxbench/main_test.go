package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunList smoke-tests the -list mode.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "BM25") || !strings.Contains(s, "declarative") {
		t.Fatalf("-list output missing predicates/realizations:\n%s", s)
	}
}

// TestRunSingleExperiment runs a fast experiment end to end on a tiny
// relation.
func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "table5.1", "-scale", "50"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table 5.1") {
		t.Fatalf("missing table title:\n%s", out.String())
	}
}

// TestRunBenchJSON runs the machine-readable benchmark mode on a tiny
// relation and validates the emitted BENCH_*.json files.
func TestRunBenchJSON(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{
		"-exp", "bench", "-impl", "native",
		"-perfsize", "200", "-perfqueries", "3",
		"-benchjson", dir,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var pre struct {
		Records        int   `json:"records"`
		SharedCorpusNS int64 `json:"shared_corpus_ns"`
		Entries        []struct {
			Predicate   string `json:"predicate"`
			Realization string `json:"realization"`
			BuildNS     int64  `json:"build_ns"`
		} `json:"entries"`
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_preprocess.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &pre); err != nil {
		t.Fatalf("BENCH_preprocess.json: %v", err)
	}
	if len(pre.Entries) != 13 || pre.SharedCorpusNS <= 0 || pre.Records != 200 {
		t.Fatalf("preprocess report: %+v", pre)
	}
	var sel struct {
		Queries int `json:"queries"`
		Entries []struct {
			Predicate   string `json:"predicate"`
			AvgSelectNS int64  `json:"avg_select_ns"`
		} `json:"entries"`
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_select.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sel); err != nil {
		t.Fatalf("BENCH_select.json: %v", err)
	}
	if len(sel.Entries) != 13 || sel.Queries <= 0 {
		t.Fatalf("select report: %+v", sel)
	}
	for _, e := range sel.Entries {
		if e.AvgSelectNS <= 0 {
			t.Fatalf("non-positive select timing for %s", e.Predicate)
		}
	}

	// The bench experiment also records the serving-path datapoint.
	var serve struct {
		Records int `json:"records"`
		Entries []struct {
			Path string  `json:"path"`
			QPS  float64 `json:"qps"`
		} `json:"entries"`
		DifferentialOK bool `json:"differential_ok"`
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &serve); err != nil {
		t.Fatalf("BENCH_serve.json: %v", err)
	}
	if serve.Records != 200 || len(serve.Entries) != 2 || !serve.DifferentialOK {
		t.Fatalf("serve report: %s", data)
	}
	for _, e := range serve.Entries {
		if e.QPS <= 0 {
			t.Fatalf("non-positive qps for path %s", e.Path)
		}
	}

	// The bench experiment also records the hot-path datapoint.
	var hot struct {
		Records int `json:"records"`
		Entries []struct {
			Predicate           string `json:"predicate"`
			NaiveNSPerQuery     int64  `json:"naive_ns_per_query"`
			OptimizedNSPerQuery int64  `json:"optimized_ns_per_query"`
		} `json:"entries"`
		DifferentialOK bool `json:"differential_ok"`
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_hotpath.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &hot); err != nil {
		t.Fatalf("BENCH_hotpath.json: %v", err)
	}
	if hot.Records != 200 || len(hot.Entries) != 13 || !hot.DifferentialOK {
		t.Fatalf("hotpath report: %s", data)
	}
	for _, e := range hot.Entries {
		if e.NaiveNSPerQuery <= 0 || e.OptimizedNSPerQuery <= 0 {
			t.Fatalf("missing hot-path timing for %s", e.Predicate)
		}
	}
}

// TestRunHotPathOnly drives the standalone hot-path experiment.
func TestRunHotPathOnly(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{
		"-exp", "hotpath", "-perfsize", "200", "-perfqueries", "3",
		"-benchjson", dir,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_hotpath.json")); err != nil {
		t.Fatal(err)
	}
}

// TestRunBadFlags pins the error paths.
func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-perfsizes", "12,x"}, &out, &errOut); code != 2 {
		t.Fatalf("bad perfsizes: exit %d", code)
	}
}
