// Command approxbench regenerates the paper's evaluation artifacts: every
// table and figure of Chapter 5, printed as ASCII tables with the paper's
// reference values noted in each title.
//
// Usage:
//
//	approxbench                  # reduced scale (minutes)
//	approxbench -scale 1         # paper scale (5000-tuple datasets, 500 queries)
//	approxbench -exp figure5.3   # a single experiment
//	approxbench -impl native     # measure the in-memory realization instead
//	approxbench -exp bench -benchjson out/   # machine-readable BENCH_preprocess/select/serve/hotpath/persist/watch .json
//	approxbench -exp hotpath -benchjson out/ # only the selection hot-path benchmark (BENCH_hotpath.json)
//	approxbench -exp persist -benchjson out/ # only the persistence benchmark (BENCH_persist.json)
//	approxbench -exp watch -benchjson out/   # only the standing-query benchmark (BENCH_watch.json)
//	approxbench -exp cluster -benchjson out/ # only the replicated-serving benchmark (BENCH_cluster.json)
//	approxbench -exp chaos -benchjson out/   # only the fault-injection drill (BENCH_chaos.json)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	approxsel "repro"
	"repro/internal/cluster/nemesis"
	"repro/internal/experiments"
	"repro/internal/server/loadtest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// runServeBench runs the serving-path load test at the benchmark harness's
// scale — the third machine-readable artifact next to BENCH_preprocess.json
// and BENCH_select.json: the naive per-request path versus a warm, sharded,
// cache-accelerated approxserved over the same zipf-skewed query mix. The
// performance options map onto the load test conservatively so the CI
// bench-smoke sizes stay fast: the relation is Size records and the timed
// request count scales with Queries.
func runServeBench(o experiments.PerfOptions) (loadtest.Report, error) {
	requests := o.Queries * 20
	if requests < 60 {
		requests = 60
	}
	distinct := o.Queries * 2
	if distinct < 10 {
		distinct = 10
	}
	return loadtest.Run(loadtest.Options{
		Records:  o.Size,
		Requests: requests,
		Distinct: distinct,
		Seed:     o.Seed,
	})
}

// runClusterBench runs the approxcluster read-scaling load test — one
// approxserved node versus leader + 2 followers with query-affinity
// routing at equal per-node cache, plus the cross-replica result-hash
// differential — and writes BENCH_cluster.json, the seventh
// machine-readable artifact.
func runClusterBench(o experiments.PerfOptions, w io.Writer, benchJSON string) error {
	requests := o.Queries * 20
	if requests < 60 {
		requests = 60
	}
	r, err := loadtest.RunCluster(loadtest.ClusterOptions{
		Records:  o.Size,
		Requests: requests,
		Seed:     o.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	r.Print(w)
	if !r.HashOK {
		return fmt.Errorf("cluster bench: replica result hashes diverged")
	}
	if benchJSON != "" {
		if err := r.WriteJSON(benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s/BENCH_cluster.json\n", benchJSON)
	}
	return nil
}

// runChaosBench runs the nemesis fault-injection drill — a 3-node cluster
// under the full randomized fault schedule (partitions, one-way links,
// lossy/slow/duplicating networks, clock-skewed lease expiry, crash+rejoin
// and a final rolling restart) with a concurrent mutating client — and
// writes BENCH_chaos.json, the eighth machine-readable artifact. The run
// fails if any replica hash diverged after a heal, any acked write was
// lost, the watch resume was not exactly-once, or a client request failed
// during the rolling restart.
func runChaosBench(o experiments.PerfOptions, w io.Writer, benchJSON string) error {
	records := o.Size
	if records > 600 {
		records = 600
	}
	r, err := nemesis.Run(nemesis.Options{Records: records, Seed: o.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	r.Print(w)
	switch {
	case !r.HashOK:
		return fmt.Errorf("chaos bench: replica hashes diverged after heal")
	case r.AckedWriteLoss > 0:
		return fmt.Errorf("chaos bench: %d acked writes lost", r.AckedWriteLoss)
	case !r.WatchExactlyOnce:
		return fmt.Errorf("chaos bench: watch resume was not exactly-once")
	case r.RollingRestartFailures > 0:
		return fmt.Errorf("chaos bench: %d client requests failed during rolling restart", r.RollingRestartFailures)
	}
	if benchJSON != "" {
		if err := r.WriteJSON(benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s/BENCH_chaos.json\n", benchJSON)
	}
	return nil
}

// runHotPathBench runs the selection hot-path benchmark — the naive
// map-accumulator merge versus the dense score-at-a-time path with
// max-score pruning, per predicate, at Limit 10 over the zipf mix — and
// writes BENCH_hotpath.json, the fourth machine-readable artifact.
func runHotPathBench(o experiments.PerfOptions, w io.Writer, benchJSON string) error {
	r, err := experiments.RunHotPath(experiments.HotPathOptions{
		Records: o.Size,
		Queries: o.Queries * 2,
		Seed:    o.Seed,
		Config:  o.Config,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	r.Print(w)
	if benchJSON != "" {
		if err := r.WriteJSON(benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s/BENCH_hotpath.json\n", benchJSON)
	}
	return nil
}

// runPersistBench runs the approxstore persistence benchmark — cold corpus
// build versus snapshot-segment load (and load + WAL replay) — and writes
// BENCH_persist.json, the fifth machine-readable artifact.
func runPersistBench(o experiments.PerfOptions, w io.Writer, benchJSON string) error {
	r, err := experiments.RunPersist(experiments.PersistOptions{
		Records: o.Size,
		Seed:    o.Seed,
		Config:  o.Config,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	r.Print(w)
	if benchJSON != "" {
		if err := r.WriteJSON(benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s/BENCH_persist.json\n", benchJSON)
	}
	return nil
}

// runWatchBench runs the approxwatch standing-query benchmark — per-insert
// incremental delta evaluation versus a from-scratch batch re-join — and
// writes BENCH_watch.json, the sixth machine-readable artifact.
func runWatchBench(o experiments.PerfOptions, w io.Writer, benchJSON string) error {
	r, err := experiments.RunWatch(experiments.WatchOptions{
		Records: o.Size,
		Seed:    o.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	r.Print(w)
	if benchJSON != "" {
		if err := r.WriteJSON(benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s/BENCH_watch.json\n", benchJSON)
	}
	return nil
}

// run executes the tool with explicit arguments and streams, so tests can
// drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("approxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 5, "accuracy scale divisor (1 = paper scale: 5000 tuples, 500 queries)")
	perfSize := fs.Int("perfsize", 2000, "relation size for Figures 5.2/5.3 (paper: 10000)")
	perfSizes := fs.String("perfsizes", "1000,2000,4000", "comma-separated sizes for Figure 5.4 (paper: 10000..100000)")
	perfQueries := fs.Int("perfqueries", 20, "timed queries per performance point (paper: 100)")
	impl := fs.String("impl", "declarative", "realization measured by performance experiments: declarative|native (bench also accepts: both)")
	exp := fs.String("exp", "all", "experiment: all, bench, hotpath, persist, watch, cluster, chaos, table5.1, table5.3, qgram, table5.5, table5.6, figure5.1, table5.7, figure5.2, figure5.3, figure5.4, figure5.5, figure5.6, ablation.minhash, ablation.impl, ablation.q")
	seed := fs.Int64("seed", 1, "generation seed")
	benchJSON := fs.String("benchjson", "", "directory to write the BENCH_*.json artifacts (with -exp bench, hotpath or persist)")
	list := fs.Bool("list", false, "list the registered predicates and realizations, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprint(stdout, "realizations:")
		for _, r := range approxsel.Realizations() {
			fmt.Fprintf(stdout, " %s", r)
		}
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "predicates:")
		for _, name := range approxsel.PredicateNames() {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
		return 0
	}

	ao := experiments.Scaled(*scale)
	ao.Seed = *seed
	po := experiments.PerfDefaults()
	po.Size = *perfSize
	po.Queries = *perfQueries
	po.Seed = *seed
	po.Impl = *impl
	po.Sizes = nil
	for _, s := range strings.Split(*perfSizes, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			fmt.Fprintf(stderr, "approxbench: bad -perfsizes entry %q\n", s)
			return 2
		}
		po.Sizes = append(po.Sizes, n)
	}

	w := stdout
	var err error
	switch strings.ToLower(*exp) {
	case "all":
		err = experiments.RunAll(w, ao, po)
	case "bench":
		var r experiments.BenchReport
		if r, err = experiments.RunBench(po); err == nil {
			r.Print(w)
			if *benchJSON != "" {
				if err = r.WriteJSONFiles(*benchJSON); err == nil {
					fmt.Fprintf(w, "\nwrote %s/BENCH_preprocess.json and %s/BENCH_select.json\n", *benchJSON, *benchJSON)
				}
			}
		}
		if err == nil {
			var sr loadtest.Report
			if sr, err = runServeBench(po); err == nil {
				fmt.Fprintln(w)
				sr.Print(w)
				if *benchJSON != "" {
					if err = sr.WriteJSON(*benchJSON); err == nil {
						fmt.Fprintf(w, "wrote %s/BENCH_serve.json\n", *benchJSON)
					}
				}
			}
		}
		if err == nil {
			err = runHotPathBench(po, w, *benchJSON)
		}
		if err == nil {
			err = runPersistBench(po, w, *benchJSON)
		}
		if err == nil {
			err = runWatchBench(po, w, *benchJSON)
		}
		if err == nil {
			err = runClusterBench(po, w, *benchJSON)
		}
		if err == nil {
			err = runChaosBench(po, w, *benchJSON)
		}
	case "hotpath":
		err = runHotPathBench(po, w, *benchJSON)
	case "persist":
		err = runPersistBench(po, w, *benchJSON)
	case "watch":
		err = runWatchBench(po, w, *benchJSON)
	case "cluster":
		err = runClusterBench(po, w, *benchJSON)
	case "chaos":
		err = runChaosBench(po, w, *benchJSON)
	case "table5.1":
		experiments.Table51(ao).Print(w)
	case "table5.3":
		var r experiments.Table53Result
		if r, err = experiments.Table53(ao); err == nil {
			r.Print(w)
		}
	case "qgram":
		var r experiments.QGramSizeResult
		if r, err = experiments.QGramSize(ao); err == nil {
			r.Print(w)
		}
	case "table5.5":
		var r experiments.AccuracyByDataset
		if r, err = experiments.Table55(ao); err == nil {
			experiments.PrintTable55(r, w)
		}
	case "table5.6":
		var r experiments.AccuracyByDataset
		if r, err = experiments.Table56(ao); err == nil {
			experiments.PrintTable56(r, w)
		}
	case "figure5.1":
		var r experiments.Figure51Result
		if r, err = experiments.Figure51(ao); err == nil {
			r.Print(w)
		}
	case "table5.7":
		var r experiments.Table57Result
		if r, err = experiments.Table57(ao); err == nil {
			r.Print(w)
		}
	case "figure5.2":
		var r experiments.Figure52Result
		if r, err = experiments.Figure52(po); err == nil {
			r.Print(w)
		}
	case "figure5.3":
		var r experiments.Figure53Result
		if r, err = experiments.Figure53(po); err == nil {
			r.Print(w)
		}
	case "figure5.4":
		var r experiments.Figure54Result
		if r, err = experiments.Figure54(po); err == nil {
			r.Print(w)
		}
	case "figure5.5":
		var r experiments.Figure55Result
		if r, err = experiments.Figure55(ao, po); err == nil {
			r.Print(w)
		}
	case "figure5.6":
		var r experiments.Figure56Result
		if r, err = experiments.Figure56(ao); err == nil {
			r.Print(w)
		}
	case "ablation.minhash":
		var r experiments.MinHashKResult
		if r, err = experiments.AblationMinHashK(ao); err == nil {
			r.Print(w)
		}
	case "ablation.impl":
		var r experiments.ImplOverheadResult
		if r, err = experiments.AblationImplOverhead(po); err == nil {
			r.Print(w)
		}
	case "ablation.q":
		var r experiments.QSweepResult
		if r, err = experiments.AblationQSweep(ao); err == nil {
			r.Print(w)
		}
	case "ablation.dist":
		var r experiments.DistributionResult
		if r, err = experiments.AblationDistributions(ao); err == nil {
			r.Print(w)
		}
	default:
		fmt.Fprintf(stderr, "approxbench: unknown experiment %q\n", *exp)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "approxbench: %v\n", err)
		return 1
	}
	return 0
}
