// Command approxbench regenerates the paper's evaluation artifacts: every
// table and figure of Chapter 5, printed as ASCII tables with the paper's
// reference values noted in each title.
//
// Usage:
//
//	approxbench                  # reduced scale (minutes)
//	approxbench -scale 1         # paper scale (5000-tuple datasets, 500 queries)
//	approxbench -exp figure5.3   # a single experiment
//	approxbench -impl native     # measure the in-memory realization instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	approxsel "repro"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 5, "accuracy scale divisor (1 = paper scale: 5000 tuples, 500 queries)")
	perfSize := flag.Int("perfsize", 2000, "relation size for Figures 5.2/5.3 (paper: 10000)")
	perfSizes := flag.String("perfsizes", "1000,2000,4000", "comma-separated sizes for Figure 5.4 (paper: 10000..100000)")
	perfQueries := flag.Int("perfqueries", 20, "timed queries per performance point (paper: 100)")
	impl := flag.String("impl", "declarative", "realization measured by performance experiments: declarative|native")
	exp := flag.String("exp", "all", "experiment: all, table5.1, table5.3, qgram, table5.5, table5.6, figure5.1, table5.7, figure5.2, figure5.3, figure5.4, figure5.5, figure5.6, ablation.minhash, ablation.impl, ablation.q")
	seed := flag.Int64("seed", 1, "generation seed")
	list := flag.Bool("list", false, "list the registered predicates and realizations, then exit")
	flag.Parse()

	if *list {
		fmt.Print("realizations:")
		for _, r := range approxsel.Realizations() {
			fmt.Printf(" %s", r)
		}
		fmt.Println()
		fmt.Println("predicates:")
		for _, name := range approxsel.PredicateNames() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	ao := experiments.Scaled(*scale)
	ao.Seed = *seed
	po := experiments.PerfDefaults()
	po.Size = *perfSize
	po.Queries = *perfQueries
	po.Seed = *seed
	po.Impl = *impl
	po.Sizes = nil
	for _, s := range strings.Split(*perfSizes, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: bad -perfsizes entry %q\n", s)
			os.Exit(2)
		}
		po.Sizes = append(po.Sizes, n)
	}

	w := os.Stdout
	var err error
	switch strings.ToLower(*exp) {
	case "all":
		err = experiments.RunAll(w, ao, po)
	case "table5.1":
		experiments.Table51(ao).Print(w)
	case "table5.3":
		var r experiments.Table53Result
		if r, err = experiments.Table53(ao); err == nil {
			r.Print(w)
		}
	case "qgram":
		var r experiments.QGramSizeResult
		if r, err = experiments.QGramSize(ao); err == nil {
			r.Print(w)
		}
	case "table5.5":
		var r experiments.AccuracyByDataset
		if r, err = experiments.Table55(ao); err == nil {
			experiments.PrintTable55(r, w)
		}
	case "table5.6":
		var r experiments.AccuracyByDataset
		if r, err = experiments.Table56(ao); err == nil {
			experiments.PrintTable56(r, w)
		}
	case "figure5.1":
		var r experiments.Figure51Result
		if r, err = experiments.Figure51(ao); err == nil {
			r.Print(w)
		}
	case "table5.7":
		var r experiments.Table57Result
		if r, err = experiments.Table57(ao); err == nil {
			r.Print(w)
		}
	case "figure5.2":
		var r experiments.Figure52Result
		if r, err = experiments.Figure52(po); err == nil {
			r.Print(w)
		}
	case "figure5.3":
		var r experiments.Figure53Result
		if r, err = experiments.Figure53(po); err == nil {
			r.Print(w)
		}
	case "figure5.4":
		var r experiments.Figure54Result
		if r, err = experiments.Figure54(po); err == nil {
			r.Print(w)
		}
	case "figure5.5":
		var r experiments.Figure55Result
		if r, err = experiments.Figure55(ao, po); err == nil {
			r.Print(w)
		}
	case "figure5.6":
		var r experiments.Figure56Result
		if r, err = experiments.Figure56(ao); err == nil {
			r.Print(w)
		}
	case "ablation.minhash":
		var r experiments.MinHashKResult
		if r, err = experiments.AblationMinHashK(ao); err == nil {
			r.Print(w)
		}
	case "ablation.impl":
		var r experiments.ImplOverheadResult
		if r, err = experiments.AblationImplOverhead(po); err == nil {
			r.Print(w)
		}
	case "ablation.q":
		var r experiments.QSweepResult
		if r, err = experiments.AblationQSweep(ao); err == nil {
			r.Print(w)
		}
	case "ablation.dist":
		var r experiments.DistributionResult
		if r, err = experiments.AblationDistributions(ao); err == nil {
			r.Print(w)
		}
	default:
		fmt.Fprintf(os.Stderr, "approxbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "approxbench: %v\n", err)
		os.Exit(1)
	}
}
