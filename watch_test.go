package approxsel

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/watch"
)

// The watch differential suite: fold a watch's incremental emissions
// across a randomized Insert/Delete/Upsert script and require, at every
// checkpoint epoch, exact equality — pair set and bit-identical scores —
// with a from-scratch batch join over the corpus's current records.

type pairKey struct{ a, b int }

// foldEvents applies events to the incremental join result, enforcing the
// stream's own invariants: a pair is asserted at most once while present,
// and retracted with exactly the score it was asserted with.
func foldEvents(t *testing.T, fold map[pairKey]float64, evs []WatchEvent, self bool) {
	t.Helper()
	for _, e := range evs {
		k := pairKey{e.ProbeTID, e.BaseTID}
		if self && k.a > k.b {
			k.a, k.b = k.b, k.a
		}
		switch e.Kind {
		case watch.KindMatch:
			if s, dup := fold[k]; dup {
				t.Fatalf("pair %v asserted twice (had score %v, new %v)", k, s, e.Score)
			}
			fold[k] = e.Score
		case watch.KindUnmatch:
			s, ok := fold[k]
			if !ok {
				t.Fatalf("pair %v retracted but never asserted", k)
			}
			if s != e.Score {
				t.Fatalf("pair %v retract score %v != asserted score %v", k, e.Score, s)
			}
			delete(fold, k)
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
}

// drainWatch reads every event currently buffered. Delivery is synchronous
// with the mutation call, so after a mutation returns its events are here.
func drainWatch(w *Watch) []WatchEvent {
	var out []WatchEvent
	for {
		select {
		case e, ok := <-w.Events():
			if !ok {
				return out
			}
			out = append(out, e)
		default:
			return out
		}
	}
}

// oracleSelf is the from-scratch truth: a fresh predicate over recs,
// self-joined at theta, keyed by unordered pair.
func oracleSelf(t *testing.T, recs []Record, predName string, theta float64, cfg Config) map[pairKey]float64 {
	t.Helper()
	out := make(map[pairKey]float64)
	if len(recs) == 0 {
		return out
	}
	if predName == "EditDistance" {
		cfg.EditTheta = theta
	}
	p, err := New(predName, recs, cfg)
	if err != nil {
		t.Fatalf("oracle predicate: %v", err)
	}
	pairs, err := SelfJoin(p, recs, theta)
	if err != nil {
		t.Fatalf("oracle self join: %v", err)
	}
	for _, pr := range pairs {
		out[pairKey{pr.ProbeTID, pr.BaseTID}] = pr.Score
	}
	return out
}

// oracleJoin is the from-scratch truth for a join watch: probes joined
// against a fresh predicate over recs, keyed (probe, base).
func oracleJoin(t *testing.T, recs, probes []Record, predName string, theta float64, cfg Config) map[pairKey]float64 {
	t.Helper()
	out := make(map[pairKey]float64)
	if len(recs) == 0 {
		return out
	}
	if predName == "EditDistance" {
		cfg.EditTheta = theta
	}
	p, err := New(predName, recs, cfg)
	if err != nil {
		t.Fatalf("oracle predicate: %v", err)
	}
	pairs, err := ApproximateJoin(p, probes, theta)
	if err != nil {
		t.Fatalf("oracle join: %v", err)
	}
	for _, pr := range pairs {
		out[pairKey{pr.ProbeTID, pr.BaseTID}] = pr.Score
	}
	return out
}

func compareFold(t *testing.T, label string, fold, want map[pairKey]float64) {
	t.Helper()
	for k, s := range want {
		got, ok := fold[k]
		if !ok {
			t.Fatalf("%s: batch join has pair %v (score %v), incremental fold does not", label, k, s)
		}
		if got != s {
			t.Fatalf("%s: pair %v incremental score %v != batch score %v", label, k, got, s)
		}
	}
	for k := range fold {
		if _, ok := want[k]; !ok {
			t.Fatalf("%s: incremental fold has pair %v, batch join does not", label, k)
		}
	}
}

// watchable corpora under one test body.
type watchCorpus interface {
	Insert(...Record) error
	Delete(...int) error
	Upsert(...Record) error
	Records() []Record
	Config() Config
	Epochs() []uint64
	RegisterWatch(string, float64, ...WatchOption) (*Watch, error)
	Predicate(string, ...BuildOption) (Predicate, error)
	WatchStats() WatchStats
}

func dirtyWatchData(t *testing.T) []Record {
	t.Helper()
	ds, err := GenerateDirty(CompanyNames(80, 7), Abbreviations(), DirtyParams{
		Size: 220, NumClean: 40, Dist: Uniform,
		ErroneousPct: 0.9, ErrorExtent: 0.08,
		TokenSwapPct: 0.20, AbbrPct: 0.40, Seed: 11,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds.Records
}

func testWatchDifferential(t *testing.T, open func([]Record) (watchCorpus, error), predName string, theta float64) {
	recs := dirtyWatchData(t)
	initial, pool := recs[:80], recs[80:200]
	probes := make([]Record, 0, 12)
	for i, r := range recs[200:212] {
		probes = append(probes, Record{TID: 100000 + i, Text: r.Text})
	}
	c, err := open(initial)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cfg := c.Config()

	// Register at the current epoch: the folds start from the batch joins
	// at registration time.
	// The buffer must hold every event between checkpoint drains — the
	// permissive predicates emit thousands across a few dirty batches, and
	// an overflow (correctly) disconnects the watch.
	self, err := c.RegisterWatch(predName, theta, WithResume(c.Epochs()), WithWatchBuffer(1<<16))
	if err != nil {
		t.Fatalf("register self watch: %v", err)
	}
	join, err := c.RegisterWatch(predName, theta, WithProbes(probes...), WithResume(c.Epochs()), WithWatchBuffer(1<<16))
	if err != nil {
		t.Fatalf("register join watch: %v", err)
	}
	selfFold := oracleSelf(t, initial, predName, theta, cfg)
	joinFold := oracleJoin(t, initial, probes, predName, theta, cfg)

	rng := rand.New(rand.NewSource(99))
	liveTIDs := make([]int, 0, len(initial))
	for _, r := range initial {
		liveTIDs = append(liveTIDs, r.TID)
	}
	poolIdx := 0
	takePool := func(k int) []Record {
		var out []Record
		for i := 0; i < k && poolIdx < len(pool); i++ {
			out = append(out, pool[poolIdx])
			poolIdx++
		}
		return out
	}
	checkpoint := func(step int) {
		label := fmt.Sprintf("step %d", step)
		if err := self.Err(); err != nil {
			t.Fatalf("%s: self watch died: %v", label, err)
		}
		foldEvents(t, selfFold, drainWatch(self), true)
		foldEvents(t, joinFold, drainWatch(join), false)
		cur := c.Records()
		compareFold(t, label+" self", selfFold, oracleSelf(t, cur, predName, theta, cfg))
		compareFold(t, label+" join", joinFold, oracleJoin(t, cur, probes, predName, theta, cfg))
	}

	for step := 0; step < 36; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert a small batch of fresh dirty records
			batch := takePool(1 + rng.Intn(3))
			if len(batch) == 0 {
				continue
			}
			if err := c.Insert(batch...); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			for _, r := range batch {
				liveTIDs = append(liveTIDs, r.TID)
			}
		case op < 7: // delete existing records
			if len(liveTIDs) < 4 {
				continue
			}
			k := 1 + rng.Intn(2)
			var tids []int
			for i := 0; i < k; i++ {
				j := rng.Intn(len(liveTIDs))
				tids = append(tids, liveTIDs[j])
				liveTIDs = append(liveTIDs[:j], liveTIDs[j+1:]...)
			}
			if err := c.Delete(tids...); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		default: // upsert: replace existing records with other dirty texts
			if len(liveTIDs) == 0 {
				continue
			}
			k := 1 + rng.Intn(2)
			seen := map[int]bool{}
			var ups []Record
			for i := 0; i < k; i++ {
				tid := liveTIDs[rng.Intn(len(liveTIDs))]
				if seen[tid] {
					continue
				}
				seen[tid] = true
				src := recs[rng.Intn(200)]
				ups = append(ups, Record{TID: tid, Text: src.Text})
			}
			if err := c.Upsert(ups...); err != nil {
				t.Fatalf("step %d upsert: %v", step, err)
			}
		}
		if step%9 == 8 {
			checkpoint(step)
		}
	}
	checkpoint(36)
	self.Close()
	join.Close()
	if err := self.Err(); err != nil {
		t.Fatalf("self watch ended with error: %v", err)
	}
}

func openPlainWatch(recs []Record) (watchCorpus, error)   { return OpenCorpus(recs) }
func openShardedWatch(recs []Record) (watchCorpus, error) { return OpenShardedCorpus(recs, 3) }

func TestWatchDifferential(t *testing.T) {
	cases := []struct {
		pred  string
		theta float64
	}{
		{"Jaccard", 0.45},
		{"IntersectSize", 3},
		{"EditDistance", 0.6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run("plain/"+tc.pred, func(t *testing.T) {
			t.Parallel()
			testWatchDifferential(t, openPlainWatch, tc.pred, tc.theta)
		})
		t.Run("sharded/"+tc.pred, func(t *testing.T) {
			t.Parallel()
			testWatchDifferential(t, openShardedWatch, tc.pred, tc.theta)
		})
	}
}

// TestWatchResumeExactlyOnce: a watch resuming from an older epoch vector
// receives exactly the events a continuously-connected watch saw after
// that vector — nothing missing, nothing twice — and a watch resuming at
// the current vector receives nothing.
func TestWatchResumeExactlyOnce(t *testing.T) {
	for _, mode := range []string{"plain", "sharded"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			recs := dirtyWatchData(t)
			var c watchCorpus
			var err error
			if mode == "plain" {
				c, err = openPlainWatch(recs[:60])
			} else {
				c, err = openShardedWatch(recs[:60])
			}
			if err != nil {
				t.Fatal(err)
			}
			full, err := c.RegisterWatch("Jaccard", 0.45, WithResume(c.Epochs()), WithWatchBuffer(1<<15))
			if err != nil {
				t.Fatal(err)
			}
			mutate := func(lo, hi int) {
				for i := lo; i < hi; i += 2 {
					end := i + 2
					if end > hi {
						end = hi
					}
					if err := c.Insert(recs[i:end]...); err != nil {
						t.Fatalf("insert: %v", err)
					}
				}
			}
			mutate(60, 80)
			mid := c.Epochs()
			firstHalf := drainWatch(full)
			mutate(80, 110)
			secondHalf := drainWatch(full)

			resumed, err := c.RegisterWatch("Jaccard", 0.45, WithResume(mid))
			if err != nil {
				t.Fatalf("resume register: %v", err)
			}
			replay := drainWatch(resumed)
			if len(replay) != len(secondHalf) {
				t.Fatalf("resumed watch replayed %d events, continuous watch saw %d after the vector", len(replay), len(secondHalf))
			}
			for i := range replay {
				if replay[i] != secondHalf[i] {
					t.Fatalf("replay event %d = %+v, continuous saw %+v", i, replay[i], secondHalf[i])
				}
			}
			if len(firstHalf) == 0 {
				t.Fatalf("test vacuous: no events before the resume vector")
			}

			caughtUp, err := c.RegisterWatch("Jaccard", 0.45, WithResume(c.Epochs()))
			if err != nil {
				t.Fatal(err)
			}
			if evs := drainWatch(caughtUp); len(evs) != 0 {
				t.Fatalf("watch resumed at the current vector replayed %d events", len(evs))
			}
		})
	}
}

// TestWatchRegistrationGuards: the delta-exactness whitelist and resume
// bounds reject what they must.
func TestWatchRegistrationGuards(t *testing.T) {
	recs := dirtyWatchData(t)[:40]
	c, err := OpenCorpus(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterWatch("TFIDF", 0.5); err == nil {
		t.Fatal("stats-dependent predicate accepted")
	}
	if _, err := c.RegisterWatch("Jaccard", 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := c.RegisterWatch("EditDistance", 0.3); err == nil {
		t.Fatal("EditDistance below 1-1/q accepted")
	}
	if _, err := c.RegisterWatch("Jaccard", 0.5, WithResume([]uint64{1, 2})); err == nil {
		t.Fatal("resume vector of wrong width accepted")
	}
	if _, err := c.RegisterWatch("Jaccard", 0.5, WithResume([]uint64{c.Epoch() + 5})); err == nil {
		t.Fatal("future resume vector accepted")
	}
	pruned, err := OpenCorpus(recs, WithPruneRate(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pruned.RegisterWatch("Jaccard", 0.5); err == nil {
		t.Fatal("pruned corpus accepted")
	}
}

// TestWatchConcurrentSelect: watch derivation racing selection traffic
// stays correct and race-clean (run under -race).
func TestWatchConcurrentSelect(t *testing.T) {
	recs := dirtyWatchData(t)
	c, err := openShardedWatch(recs[:80])
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.RegisterWatch("Jaccard", 0.45, WithResume(c.Epochs()), WithWatchBuffer(1<<15))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := c.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := pred.Select(recs[(g*31+i)%len(recs)].Text); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 80; i < 160; i += 2 {
		if err := c.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	fold := oracleSelf(t, recs[:80], "Jaccard", 0.45, c.Config())
	foldEvents(t, fold, drainWatch(w), true)
	compareFold(t, "final", fold, oracleSelf(t, c.Records(), "Jaccard", 0.45, c.Config()))
}

// TestWatchLagClosesWatch: a consumer that never drains a tiny buffer is
// disconnected with ErrWatchLagged instead of blocking mutations.
func TestWatchLagClosesWatch(t *testing.T) {
	recs := dirtyWatchData(t)
	c, err := openPlainWatch(recs[:80])
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.RegisterWatch("Jaccard", 0.3, WithWatchBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 80; i < 180; i++ {
		if err := c.Insert(recs[i]); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if w.Err() != nil {
			break
		}
	}
	drainWatch(w)
	if _, open := <-w.Events(); open {
		t.Fatal("lagged watch channel still open after drain")
	}
	if w.Err() != ErrWatchLagged {
		t.Fatalf("lagged watch Err = %v, want ErrWatchLagged", w.Err())
	}
	st := c.WatchStats()
	if st.Active != 0 {
		t.Fatalf("lagged watch still counted active: %+v", st)
	}
}
