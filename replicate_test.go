package approxsel

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

// The replication facade suite: SetReplicationObserver → ApplyReplicated
// must keep a replica bit-identical to the source (epoch vector, scores,
// tie order), apply idempotently after a re-ship, refuse epoch gaps, and
// round-trip through the full-snapshot join path both in memory and into
// a durable store directory.

// replicaPair builds a source and a replica from the same base relation
// and wires the source's replication observer straight into the replica.
func replicaPair(t *testing.T, initial []Record, shards int) (*ShardedCorpus, *ShardedCorpus, *[]ReplicationBatch) {
	t.Helper()
	src, err := OpenShardedCorpus(initial, shards)
	if err != nil {
		t.Fatalf("open source: %v", err)
	}
	dst, err := OpenShardedCorpus(initial, shards)
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	var shipped []ReplicationBatch
	src.SetReplicationObserver(func(b ReplicationBatch) {
		shipped = append(shipped, b)
		if err := dst.ApplyReplicated(b); err != nil {
			t.Errorf("apply batch %d: %v", b.Seq, err)
		}
	})
	return src, dst, &shipped
}

func assertReplicaIdentical(t *testing.T, src, dst *ShardedCorpus, queries []string) {
	t.Helper()
	se, de := src.Epochs(), dst.Epochs()
	if len(se) != len(de) {
		t.Fatalf("epoch vectors differ in length: %d vs %d", len(se), len(de))
	}
	for i := range se {
		if se[i] != de[i] {
			t.Fatalf("shard %d epoch: source %d, replica %d", i, se[i], de[i])
		}
	}
	if src.Seq() != dst.Seq() {
		t.Fatalf("seq: source %d, replica %d", src.Seq(), dst.Seq())
	}
	for _, name := range []string{"Jaccard", "BM25"} {
		sp, err := src.Predicate(name)
		if err != nil {
			t.Fatalf("source predicate %s: %v", name, err)
		}
		dp, err := dst.Predicate(name)
		if err != nil {
			t.Fatalf("replica predicate %s: %v", name, err)
		}
		for _, q := range queries {
			sm, err := sp.Select(q)
			if err != nil {
				t.Fatalf("source select: %v", err)
			}
			dm, err := dp.Select(q)
			if err != nil {
				t.Fatalf("replica select: %v", err)
			}
			if len(sm) != len(dm) {
				t.Fatalf("%s(%q): source %d matches, replica %d", name, q, len(sm), len(dm))
			}
			for i := range sm {
				if sm[i].TID != dm[i].TID || sm[i].Score != dm[i].Score {
					t.Fatalf("%s(%q) match %d: source (%d,%v), replica (%d,%v)",
						name, q, i, sm[i].TID, sm[i].Score, dm[i].TID, dm[i].Score)
				}
			}
		}
	}
}

// mutateHistory applies a randomized Insert/Delete/Upsert history to the
// corpus and returns a few query strings drawn from it.
func mutateHistory(t *testing.T, c *ShardedCorpus, recs []Record, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := make([]int, 0, len(recs))
	for _, r := range recs[:60] {
		live = append(live, r.TID)
	}
	next := 60
	for step := 0; step < 25; step++ {
		switch k := rng.Intn(3); {
		case k == 0 && next+2 <= len(recs):
			if err := c.Insert(recs[next : next+2]...); err != nil {
				t.Fatalf("insert: %v", err)
			}
			live = append(live, recs[next].TID, recs[next+1].TID)
			next += 2
		case k == 1 && len(live) > 4:
			i := rng.Intn(len(live))
			if err := c.Delete(live[i]); err != nil {
				t.Fatalf("delete: %v", err)
			}
			live = append(live[:i], live[i+1:]...)
		default:
			i := rng.Intn(len(live))
			if err := c.Upsert(Record{TID: live[i], Text: recs[rng.Intn(len(recs))].Text}); err != nil {
				t.Fatalf("upsert: %v", err)
			}
		}
	}
	queries := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, recs[rng.Intn(len(recs))].Text)
	}
	return queries
}

func TestReplicationBitIdentical(t *testing.T) {
	recs := dirtyWatchData(t)
	src, dst, shipped := replicaPair(t, recs[:60], 4)
	queries := mutateHistory(t, src, recs, 7)
	if len(*shipped) == 0 {
		t.Fatal("test vacuous: no batches shipped")
	}
	assertReplicaIdentical(t, src, dst, queries)

	// Idempotence: re-applying the entire shipped history is a no-op —
	// this is exactly the re-ship after a torn WAL tail or a reconnect
	// from an older epoch vector.
	epochs := dst.Epochs()
	for _, b := range *shipped {
		if err := dst.ApplyReplicated(b); err != nil {
			t.Fatalf("re-apply batch %d: %v", b.Seq, err)
		}
	}
	got := dst.Epochs()
	for i := range got {
		if got[i] != epochs[i] {
			t.Fatalf("re-apply moved shard %d from %d to %d", i, epochs[i], got[i])
		}
	}
	assertReplicaIdentical(t, src, dst, queries)
}

func TestReplicationGapDetection(t *testing.T) {
	recs := dirtyWatchData(t)
	src, err := OpenShardedCorpus(recs[:40], 2)
	if err != nil {
		t.Fatalf("open source: %v", err)
	}
	var shipped []ReplicationBatch
	src.SetReplicationObserver(func(b ReplicationBatch) { shipped = append(shipped, b) })
	// Three upserts of the same record: three consecutive epochs on one shard.
	for i := 0; i < 3; i++ {
		if err := src.Upsert(Record{TID: recs[0].TID, Text: recs[60+i].Text}); err != nil {
			t.Fatalf("upsert: %v", err)
		}
	}
	if len(shipped) != 3 {
		t.Fatalf("shipped %d batches, want 3", len(shipped))
	}
	dst, err := OpenShardedCorpus(recs[:40], 2)
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	// Skipping the first two batches must be refused, not applied.
	if err := dst.ApplyReplicated(shipped[2]); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap apply: got %v, want ErrReplicaGap", err)
	}
	// In order, all three land.
	for _, b := range shipped {
		if err := dst.ApplyReplicated(b); err != nil {
			t.Fatalf("ordered apply %d: %v", b.Seq, err)
		}
	}
	// A batch naming a shard outside the layout is divergence.
	bad := shipped[0]
	bad.Subs = []ReplicationSub{{Shard: 99, Kind: bad.Subs[0].Kind, Epoch: 1}}
	if err := dst.ApplyReplicated(bad); !errors.Is(err, ErrReplicaDiverged) {
		t.Fatalf("bad shard apply: got %v, want ErrReplicaDiverged", err)
	}
}

func TestReplicaSnapshotRoundTrip(t *testing.T) {
	recs := dirtyWatchData(t)
	src, err := OpenShardedCorpus(recs[:60], 3)
	if err != nil {
		t.Fatalf("open source: %v", err)
	}
	queries := mutateHistory(t, src, recs, 13)

	var buf bytes.Buffer
	if err := src.WriteReplicaSnapshot(&buf); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	stream := buf.Bytes()

	t.Run("InMemory", func(t *testing.T) {
		dst, err := OpenReplicaSnapshot(bytes.NewReader(stream), "")
		if err != nil {
			t.Fatalf("open snapshot: %v", err)
		}
		assertReplicaIdentical(t, src, dst, queries)
	})

	t.Run("Durable", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "replica")
		dst, err := OpenReplicaSnapshot(bytes.NewReader(stream), dir)
		if err != nil {
			t.Fatalf("open snapshot: %v", err)
		}
		assertReplicaIdentical(t, src, dst, queries)
		// The install is a real store: mutations keep logging, and a cold
		// start comes back at the mutated vector with the same seq line.
		if err := dst.Insert(recs[200]); err != nil {
			t.Fatalf("insert on installed replica: %v", err)
		}
		vec, seq := dst.Epochs(), dst.Seq()
		if err := dst.CloseStore(); err != nil {
			t.Fatalf("close store: %v", err)
		}
		re, err := OpenShardedCorpus(nil, 0, WithDataDir(dir))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if re.Seq() != seq {
			t.Fatalf("reopened seq %d, want %d", re.Seq(), seq)
		}
		got := re.Epochs()
		for i := range got {
			if got[i] != vec[i] {
				t.Fatalf("reopened epochs %v, want %v", got, vec)
			}
		}
	})
}

// TestReplicatedWatchResume: a WithResume watch registered on a replica
// must deliver the replicated history exactly once — the events the
// client missed arrive from the replica's replay window even though the
// mutations originated at the source.
func TestReplicatedWatchResume(t *testing.T) {
	recs := dirtyWatchData(t)
	src, dst, _ := replicaPair(t, recs[:60], 3)

	// Window A lands on both; a client records the vector after it.
	for i := 60; i < 70; i += 2 {
		if err := src.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	vec1 := dst.Epochs()

	// Window B: the missed events.
	for i := 70; i < 80; i += 2 {
		if err := src.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := src.Delete(recs[60].TID); err != nil {
		t.Fatalf("delete: %v", err)
	}

	srcW, err := src.RegisterWatch("Jaccard", 0.45, WithResume(vec1), WithWatchBuffer(1<<15))
	if err != nil {
		t.Fatalf("register on source: %v", err)
	}
	dstW, err := dst.RegisterWatch("Jaccard", 0.45, WithResume(vec1), WithWatchBuffer(1<<15))
	if err != nil {
		t.Fatalf("register on replica: %v", err)
	}
	want := drainWatch(srcW)
	got := drainWatch(dstW)
	if len(want) == 0 {
		t.Fatal("test vacuous: no resumed events on the source")
	}
	if len(got) != len(want) {
		t.Fatalf("replica resumed %d events, source %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed event %d: replica %+v, source %+v", i, got[i], want[i])
		}
	}
	srcW.Close()
	dstW.Close()
}
