package approxsel

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCorpusSinglePass is the acceptance contract of the Corpus API:
// building all thirteen native predicates through one shared corpus
// performs exactly one tokenization/statistics pass, and every attached
// predicate selects exactly like its independently built twin.
func TestCorpusSinglePass(t *testing.T) {
	records := facadeRecords()
	c, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	preds := make(map[string]Predicate)
	for _, name := range PredicateNames() {
		p, err := c.Predicate(name)
		if err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		preds[name] = p
	}
	if got := c.c.TokenizePasses(); got != 1 {
		t.Fatalf("thirteen attaches must share one tokenization pass, got %d", got)
	}
	queries := []string{records[0].Text, records[7].Text + " inc", "zzzz"}
	for _, name := range PredicateNames() {
		solo, err := New(name, records)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want, err := solo.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := preds[name].Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(got, want) {
				t.Fatalf("%s query %q: corpus-attached ranking diverged\ngot:  %+v\nwant: %+v", name, q, got, want)
			}
		}
	}
}

// TestCorpusMutationDifferential is the live-update acceptance contract:
// after Insert/Delete/Upsert, every attached predicate (all thirteen
// natives) must select exactly like a predicate freshly built over the
// updated record set.
func TestCorpusMutationDifferential(t *testing.T) {
	records := facadeRecords()[:40]
	c, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	preds := make(map[string]Predicate)
	for _, name := range PredicateNames() {
		p, err := c.Predicate(name)
		if err != nil {
			t.Fatal(err)
		}
		preds[name] = p
	}
	extra := CompanyNames(6, 99)
	if err := c.Insert(
		Record{TID: 200, Text: extra[0]},
		Record{TID: 201, Text: extra[1]},
		Record{TID: 202, Text: extra[2]},
	); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(3, 17, 29); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(Record{TID: 200, Text: extra[3]}, Record{TID: 5, Text: extra[4]}); err != nil {
		t.Fatal(err)
	}

	updated := c.Records()
	if len(updated) != 40 {
		t.Fatalf("record count after mutations: %d", len(updated))
	}
	queries := []string{records[0].Text, extra[3], extra[4], strings.ToLower(records[10].Text)}
	for _, name := range PredicateNames() {
		fresh, err := New(name, updated)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want, err := fresh.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := preds[name].Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(got, want) {
				t.Fatalf("%s query %q: live corpus diverged from fresh build\ngot:  %+v\nwant: %+v", name, q, got, want)
			}
		}
	}
}

// TestCorpusConcurrentSelectBatch runs SelectBatch against attached
// predicates while the corpus is being mutated; under -race this verifies
// the snapshot/epoch handshake is data-race free, and every batch must
// observe a consistent version (no errors, sane results).
func TestCorpusConcurrentSelectBatch(t *testing.T) {
	records := facadeRecords()
	c, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]string, 12)
	for i := range queries {
		queries[i] = records[i*3].Text
	}
	names := []string{"BM25", "Jaccard", "LM", "GESJaccard", "EditDistance"}
	preds := make([]Predicate, len(names))
	for i, name := range names {
		if preds[i], err = c.Predicate(name); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(preds)+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			tid := 500 + i
			if err := c.Insert(Record{TID: tid, Text: CompanyNames(1, int64(i+40))[0]}); err != nil {
				errs <- err
				return
			}
			if i%2 == 1 {
				if err := c.Delete(tid); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	for _, p := range preds {
		wg.Add(1)
		go func(p Predicate) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := SelectBatch(context.Background(), p, queries, Workers(4))
				if err != nil {
					errs <- err
					return
				}
				if len(res) != len(queries) {
					errs <- fmt.Errorf("%s: batch returned %d results for %d queries", p.Name(), len(res), len(queries))
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWithCorpusOption checks the New(name, nil, WithCorpus(c)) call form
// and that the option adopts the corpus configuration.
func TestWithCorpusOption(t *testing.T) {
	records := facadeRecords()[:30]
	c, err := OpenCorpus(records, WithQ(3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := New("BM25", nil, WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	want, err := New("BM25", records, WithQ(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Select(records[2].Text)
	if err != nil {
		t.Fatal(err)
	}
	b, err := want.Select(records[2].Text)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(a, b) {
		t.Fatalf("WithCorpus attach diverged: %+v vs %+v", a, b)
	}
	// Scoring options still compose on top of the adopted config.
	if _, err := c.Predicate("BM25", WithBM25(2, 8, 0.5)); err != nil {
		t.Fatalf("scoring option on attach: %v", err)
	}
	// Tokenization options that contradict the corpus are rejected.
	if _, err := c.Predicate("BM25", WithQ(2)); err == nil {
		t.Fatal("q mismatch must be rejected at attach")
	}
	// The records argument is ignored with WithCorpus — nil is fine, and
	// push-down options keep working through the view.
	top, err := SelectCtx(context.Background(), p, records[2].Text, Limit(3))
	if err != nil || len(top) > 3 {
		t.Fatalf("TopK through corpus view: %v %v", top, err)
	}
	if _, err := SelectCtx(context.Background(), p, "x", Limit(-1)); err == nil {
		t.Fatal("negative limit must error through the view")
	}
}

// TestCorpusDeclarativeAndCustomAttach checks the legacy adapter: the
// declarative realization and Register-ed predicates attach to a corpus
// and observe mutations via rebuild-on-epoch.
func TestCorpusDeclarativeAndCustomAttach(t *testing.T) {
	if err := Register("EqualityC", buildEquality); err != nil {
		t.Fatal(err)
	}
	defer Unregister("EqualityC")

	records := facadeRecords()[:15]
	c, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	decl, err := c.Predicate("BM25", WithRealization(Declarative))
	if err != nil {
		t.Fatal(err)
	}
	custom, err := c.Predicate("EqualityC")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := decl.Select(records[1].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].TID != records[1].TID {
		t.Fatalf("declarative attach: %+v", ms)
	}
	if err := c.Insert(Record{TID: 300, Text: "Zyzzyva Holdings"}); err != nil {
		t.Fatal(err)
	}
	ms, err = custom.Select("zyzzyva holdings")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].TID != 300 {
		t.Fatalf("custom predicate must observe the insert: %+v", ms)
	}
	ms, err = decl.Select("Zyzzyva Holdings")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].TID != 300 {
		t.Fatalf("declarative predicate must observe the insert: %+v", ms)
	}
}

func TestOpenCorpusErrors(t *testing.T) {
	if _, err := OpenCorpus(facadeRecords(), WithQ(0)); err == nil {
		t.Error("invalid config must be rejected")
	}
	dup := []Record{{TID: 1, Text: "a"}, {TID: 1, Text: "b"}}
	if _, err := OpenCorpus(dup); err == nil {
		t.Error("duplicate TIDs must be rejected")
	}
	c, err := OpenCorpus(facadeRecords()[:5])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(facadeRecords()[:5], WithCorpus(c)); err == nil {
		t.Error("WithCorpus inside OpenCorpus must be rejected")
	}
	if _, err := c.Predicate("NoSuchPredicate"); err == nil {
		t.Error("unknown predicate must be rejected")
	}
	if _, err := c.Predicate("BM25", WithRealization("vectorized")); err == nil {
		t.Error("unknown realization must be rejected")
	}
}
