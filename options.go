package approxsel

import (
	"repro/internal/core"
)

// ---- construction options ----

// BuildOption configures predicate construction in New. Config itself is a
// BuildOption that replaces the whole parameter set, which keeps the
// original New(name, records, cfg) call form working unchanged; the With*
// options below tweak individual parameters on top of whatever came before
// them, so
//
//	approxsel.New("BM25", records, approxsel.WithQ(3), approxsel.WithPruneRate(0.1))
//
// starts from DefaultConfig and adjusts two knobs.
type BuildOption = core.BuildOption

// buildOpt adapts a settings mutation to the BuildOption interface.
func buildOpt(f func(*core.BuildSettings)) BuildOption { return core.BuildOptionFunc(f) }

// configOpt adapts a Config mutation to the BuildOption interface.
func configOpt(f func(*Config)) BuildOption {
	return buildOpt(func(s *core.BuildSettings) { f(&s.Config) })
}

// WithCorpus makes New attach the predicate to a shared, mutable Corpus
// instead of preprocessing the records argument (which is ignored and may
// be nil): all predicates attached to one corpus share a single
// tokenization/statistics pass and observe Insert/Delete/Upsert on the
// corpus. The option adopts the corpus's configuration, so options placed
// after it adjust scoring-level parameters on top; tokenization-level
// parameters must match the corpus (they were fixed at OpenCorpus).
func WithCorpus(c *Corpus) BuildOption {
	return buildOpt(func(s *core.BuildSettings) {
		if c == nil {
			return
		}
		s.Corpus = c.c
		s.Config = c.c.Config()
	})
}

// WithRealization selects which realization New builds: Native (the
// default, in-memory) or Declarative (the paper's SQL realization).
func WithRealization(r Realization) BuildOption {
	return buildOpt(func(s *core.BuildSettings) { s.Realization = string(r) })
}

// WithConfig replaces the entire parameter Config, like passing a Config
// positionally. Options appearing after it still apply on top.
func WithConfig(cfg Config) BuildOption { return cfg }

// WithQ sets the q-gram size of the token-based predicates (paper: 2).
func WithQ(q int) BuildOption { return configOpt(func(c *Config) { c.Q = q }) }

// WithWordQ sets the q-gram size used on word tokens inside the GES
// combination predicates.
func WithWordQ(q int) BuildOption { return configOpt(func(c *Config) { c.WordQ = q }) }

// WithBM25 sets the BM25 parameters (paper: k1=1.5, k3=8, b=0.675).
func WithBM25(k1, k3, b float64) BuildOption {
	return configOpt(func(c *Config) { c.BM25K1, c.BM25K3, c.BM25B = k1, k3, b })
}

// WithHMMA0 sets the HMM "General English" transition probability.
func WithHMMA0(a0 float64) BuildOption { return configOpt(func(c *Config) { c.HMMA0 = a0 }) }

// WithGESCins sets the GES token-insertion cost factor.
func WithGESCins(cins float64) BuildOption {
	return configOpt(func(c *Config) { c.GESCins = cins })
}

// WithGESThreshold sets the candidate-filter threshold of GESJaccard and
// GESapx; zero disables filtering.
func WithGESThreshold(theta float64) BuildOption {
	return configOpt(func(c *Config) { c.GESThreshold = theta })
}

// WithSoftTFIDFTheta sets the Jaro–Winkler closeness threshold of SoftTFIDF.
func WithSoftTFIDFTheta(theta float64) BuildOption {
	return configOpt(func(c *Config) { c.SoftTFIDFTheta = theta })
}

// WithEditTheta sets the edit-similarity threshold driving q-gram filtering
// in the edit predicate; zero ranks the whole base relation.
func WithEditTheta(theta float64) BuildOption {
	return configOpt(func(c *Config) { c.EditTheta = theta })
}

// WithEditPositional toggles the positional q-gram filter of the edit
// predicate.
func WithEditPositional(on bool) BuildOption {
	return configOpt(func(c *Config) { c.EditPositional = on })
}

// WithMinHash sets the min-hash signature size and permutation seed used by
// GESapx (paper: k=5).
func WithMinHash(k int, seed int64) BuildOption {
	return configOpt(func(c *Config) { c.MinHashK, c.MinHashSeed = k, seed })
}

// WithPruneRate sets the §5.6 IDF pruning rate applied during
// preprocessing; zero disables pruning.
func WithPruneRate(rate float64) BuildOption {
	return configOpt(func(c *Config) { c.PruneRate = rate })
}

// ---- selection options ----

// SelectOption tunes one selection made through SelectCtx.
type SelectOption interface {
	applySelect(*core.SelectOptions)
}

// BatchOption tunes a SelectBatch call. Every ProbeOption is also a
// BatchOption, applying to each probe of the batch.
type BatchOption interface {
	applyBatch(*batchSettings)
}

// ProbeOption is a per-probe limit usable both on a single SelectCtx call
// and on every query of a SelectBatch (it implements SelectOption and
// BatchOption).
type ProbeOption struct {
	apply func(*core.SelectOptions)
}

func (o ProbeOption) applySelect(s *core.SelectOptions) { o.apply(s) }
func (o ProbeOption) applyBatch(b *batchSettings)       { o.apply(&b.sel) }

// Limit keeps only the k best matches. The limit is pushed down into the
// predicate when it supports it (all native predicates do), replacing the
// full sort of the candidate set with a k-bounded heap.
func Limit(k int) ProbeOption {
	return ProbeOption{apply: func(s *core.SelectOptions) { s.Limit = k }}
}

// Threshold keeps only matches with score ≥ theta — the paper's
// sim(t_q, t) ≥ θ selection — filtering before materialization in
// predicates that support push-down.
func Threshold(theta float64) ProbeOption {
	return ProbeOption{apply: func(s *core.SelectOptions) {
		s.Threshold = theta
		s.HasThreshold = true
	}}
}

// Workers sets the worker-pool size of SelectBatch. Values below 1 select
// the default (GOMAXPROCS). Predicates that do not declare concurrent
// probing safe (the declarative realization) are always probed by a single
// worker regardless of this option.
func Workers(n int) BatchOption { return workersOption(n) }

type workersOption int

func (w workersOption) applyBatch(b *batchSettings) { b.workers = int(w) }

// selectOptions folds SelectOptions into the core representation.
func selectOptions(opts []SelectOption) core.SelectOptions {
	var so core.SelectOptions
	for _, o := range opts {
		o.applySelect(&so)
	}
	return so
}
