package approxsel

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// The facade-level persistence acceptance suite: save→load and
// save→mutate→crash→replay must yield bit-identical scores, tie order and
// epoch versus a never-persisted corpus, for all thirteen native
// predicates.

// persistQueries exercises exact hits, near-misses and no-token-overlap
// queries against the facade relation.
func persistQueries(records []Record) []string {
	return []string{
		records[0].Text,
		records[7].Text + " inc",
		records[3].Text,
		"international business machines",
		"zzzz",
	}
}

// matchesBitIdentical is the strict form of matchesEqual: scores must agree
// bit for bit, not merely compare equal (== cannot tell 0.0 from -0.0).
func matchesBitIdentical(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TID != b[i].TID || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// assertPredicatesBitIdentical attaches every canonical native predicate to
// both corpora and compares full rankings on every query.
func assertPredicatesBitIdentical(t *testing.T, want, got interface {
	Predicate(string, ...BuildOption) (Predicate, error)
}, queries []string) {
	t.Helper()
	for _, name := range core.PredicateNames {
		wp, err := want.Predicate(name)
		if err != nil {
			t.Fatalf("attach %s to control: %v", name, err)
		}
		gp, err := got.Predicate(name)
		if err != nil {
			t.Fatalf("attach %s to restored: %v", name, err)
		}
		for _, q := range queries {
			wms, err := wp.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			gms, err := gp.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesBitIdentical(wms, gms) {
				t.Fatalf("%s query %q: restored ranking diverged\nwant: %+v\ngot:  %+v", name, q, wms, gms)
			}
		}
	}
}

func TestSaveLoadBitIdenticalAllPredicates(t *testing.T) {
	records := facadeRecords()
	dir := filepath.Join(t.TempDir(), "corpus")
	c, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	lc, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Epoch() != c.Epoch() || lc.Len() != c.Len() {
		t.Fatalf("restored state: epoch %d len %d, want %d/%d", lc.Epoch(), lc.Len(), c.Epoch(), c.Len())
	}
	assertPredicatesBitIdentical(t, c, lc, persistQueries(records))
	// A loaded corpus never re-tokenizes: attaching the full suite reads the
	// decoded tables directly.
	if got := lc.c.TokenizePasses(); got != 0 {
		t.Fatalf("loaded corpus tokenized %d times", got)
	}
	// SaveCorpus leaves the source corpus un-attached: it keeps mutating.
	if c.Persistent() {
		t.Fatal("SaveCorpus must not attach the corpus")
	}
	if err := c.Insert(Record{TID: 9000, Text: "Still Mutable Inc"}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCorpusCrashReplayDifferential(t *testing.T) {
	records := facadeRecords()
	dir := filepath.Join(t.TempDir(), "corpus")
	control, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := OpenCorpus(records, WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !durable.Persistent() {
		t.Fatal("WithDataDir must attach the store")
	}
	mutate := func(c *Corpus) {
		t.Helper()
		if err := c.Insert(Record{TID: 900, Text: "Stanley Morgan Incorporated"},
			Record{TID: 901, Text: "Redwood Energy Holdings"}); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(3, 11); err != nil {
			t.Fatal(err)
		}
		if err := c.Upsert(Record{TID: 900, Text: "Morgan Stanley Inc"}); err != nil {
			t.Fatal(err)
		}
	}
	mutate(control)
	mutate(durable)
	st, ok := durable.StoreStats()
	if !ok || st.WALEntries != 3 || len(st.SnapshotEpochs) != 1 || st.SnapshotEpochs[0] != 0 {
		t.Fatalf("store stats after three logged mutations: %+v ok=%v", st, ok)
	}

	// Crash: the durable corpus is abandoned without CloseStore. Acknowledged
	// mutations are already in the WAL — replay must reach the exact
	// pre-crash epoch.
	restored, err := OpenCorpus(nil, WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.CloseStore()
	if restored.Epoch() != control.Epoch() {
		t.Fatalf("replayed epoch %d, control %d", restored.Epoch(), control.Epoch())
	}
	assertPredicatesBitIdentical(t, control, restored, persistQueries(records))

	// The restored corpus keeps logging: one more mutation, one more entry.
	if err := restored.Insert(Record{TID: 950, Text: "After The Crash LLC"}); err != nil {
		t.Fatal(err)
	}
	if st, _ := restored.StoreStats(); st.WALEntries != 4 {
		t.Fatalf("wal entries after post-replay insert: %+v", st)
	}
}

func TestDurableCorpusCheckpoint(t *testing.T) {
	records := facadeRecords()[:30]
	dir := filepath.Join(t.TempDir(), "corpus")
	c, err := OpenCorpus(records, WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Record{TID: 900, Text: "Checkpoint Fodder Co"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := c.StoreStats()
	if st.WALEntries != 0 || st.SnapshotEpochs[0] != 1 || st.SnapshotBytes <= 0 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	// Post-checkpoint mutations replay on top of the new segment.
	if err := c.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncStore(); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenCorpus(nil, WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.CloseStore()
	if restored.Epoch() != 2 || restored.Len() != c.Len() {
		t.Fatalf("restored epoch %d len %d", restored.Epoch(), restored.Len())
	}

	// CloseStore seals the log: further mutations must fail, selections keep
	// working.
	if err := c.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Record{TID: 1000, Text: "Unlogged"}); err == nil {
		t.Fatal("mutation after CloseStore must fail")
	}
	p, err := c.Predicate("BM25")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Select(records[0].Text); err != nil {
		t.Fatalf("selection after CloseStore: %v", err)
	}
}

func TestDurableShardedCorpusCrashReplay(t *testing.T) {
	records := facadeRecords()
	root := filepath.Join(t.TempDir(), "sharded")
	control, err := OpenShardedCorpus(records, 3)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := OpenShardedCorpus(records, 3, WithDataDir(root))
	if err != nil {
		t.Fatal(err)
	}
	if !durable.Persistent() {
		t.Fatal("WithDataDir must attach the sharded store")
	}
	mutate := func(s *ShardedCorpus) {
		t.Helper()
		if err := s.Insert(Record{TID: 900, Text: "Stanley Morgan Incorporated"},
			Record{TID: 901, Text: "Redwood Energy Holdings"}); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(3, 11); err != nil {
			t.Fatal(err)
		}
		if err := s.Upsert(Record{TID: 901, Text: "Redwood Energy Holdings Ltd"}); err != nil {
			t.Fatal(err)
		}
	}
	mutate(control)
	mutate(durable)
	// Mid-history checkpoint, then more mutations: the reopened corpus must
	// splice segment + WAL correctly per shard.
	if err := durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := control.Insert(Record{TID: 950, Text: "Post Checkpoint Co"}); err != nil {
		t.Fatal(err)
	}
	if err := durable.Insert(Record{TID: 950, Text: "Post Checkpoint Co"}); err != nil {
		t.Fatal(err)
	}

	// Crash (no CloseStore), then reopen. The manifest fixes the shard
	// count: the records and shard arguments are ignored.
	restored, err := OpenShardedCorpus(nil, 99, WithDataDir(root))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.CloseStore()
	if restored.Shards() != 3 {
		t.Fatalf("manifest must fix the shard count, got %d", restored.Shards())
	}
	wantN, wantE := control.State()
	gotN, gotE := restored.State()
	if wantN != gotN || len(wantE) != len(gotE) {
		t.Fatalf("restored state %d/%v, control %d/%v", gotN, gotE, wantN, wantE)
	}
	for i := range wantE {
		if wantE[i] != gotE[i] {
			t.Fatalf("shard %d epoch %d, control %d", i, gotE[i], wantE[i])
		}
	}
	assertPredicatesBitIdentical(t, control, restored, persistQueries(records))

	st, ok := restored.StoreStats()
	if !ok || len(st.SnapshotEpochs) != 3 || st.SnapshotBytes <= 0 {
		t.Fatalf("sharded store stats: %+v ok=%v", st, ok)
	}
}

func TestPersistenceErrors(t *testing.T) {
	if err := SaveCorpus(t.TempDir(), nil); err == nil {
		t.Fatal("SaveCorpus(nil) must fail")
	}
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("LoadCorpus of a missing dir must fail")
	}
	c, err := OpenCorpus(facadeRecords()[:10])
	if err != nil {
		t.Fatal(err)
	}
	if c.Persistent() {
		t.Fatal("in-memory corpus must not report persistent")
	}
	if err := c.Checkpoint(); err == nil {
		t.Fatal("Checkpoint without a data dir must fail")
	}
	if err := c.SyncStore(); err != nil {
		t.Fatalf("SyncStore without a data dir is a no-op: %v", err)
	}
	if err := c.CloseStore(); err != nil {
		t.Fatalf("CloseStore without a data dir is a no-op: %v", err)
	}
	s, err := OpenShardedCorpus(facadeRecords()[:10], 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Persistent() {
		t.Fatal("in-memory sharded corpus must not report persistent")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("sharded Checkpoint without a data dir must fail")
	}
	if _, ok := s.StoreStats(); ok {
		t.Fatal("sharded StoreStats without a data dir must report !ok")
	}
}

// TestNewRejectsDataDir pins the option-surface contract: WithDataDir is
// only meaningful on OpenCorpus/OpenShardedCorpus, and New must say so
// instead of silently dropping the durability the caller asked for.
func TestNewRejectsDataDir(t *testing.T) {
	_, err := New("BM25", facadeRecords()[:5], WithDataDir(t.TempDir()))
	if err == nil {
		t.Fatal("New with WithDataDir must error")
	}
}

// TestShardEpochRegressionDetected pins the manifest consistency check: a
// shard that replays below the manifest's checkpoint epoch has lost
// acknowledged state, and the open must fail rather than serve a
// cross-shard-inconsistent corpus.
func TestShardEpochRegressionDetected(t *testing.T) {
	root := filepath.Join(t.TempDir(), "sharded")
	s, err := OpenShardedCorpus(facadeRecords(), 2, WithDataDir(root))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
	m, err := store.ReadManifest(root)
	if err != nil {
		t.Fatal(err)
	}
	m.Epochs[1] += 3 // claim a checkpoint the shard never reached
	if err := store.WriteManifest(root, m); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedCorpus(nil, 0, WithDataDir(root)); err == nil {
		t.Fatal("a shard below the manifest epoch must fail the open")
	}
}

// TestDataDirFlavorMismatch pins the cross-flavor guard: a directory
// holding one store layout must not be silently re-seeded by the other
// opener (which would serve a corpus missing every logged mutation).
func TestDataDirFlavorMismatch(t *testing.T) {
	records := facadeRecords()[:15]

	shardedDir := filepath.Join(t.TempDir(), "sharded")
	s, err := OpenShardedCorpus(records, 2, WithDataDir(shardedDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(records, WithDataDir(shardedDir)); err == nil {
		t.Fatal("OpenCorpus over a sharded store must fail, not re-seed")
	}

	plainDir := filepath.Join(t.TempDir(), "plain")
	c, err := OpenCorpus(records, WithDataDir(plainDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedCorpus(records, 2, WithDataDir(plainDir)); err == nil {
		t.Fatal("OpenShardedCorpus over a plain store must fail, not re-seed")
	}
}
